// Package scheduler is the job-execution layer of the placement service:
// it owns the work queues, the worker pools, retries, the crash-safe
// journal and the content-addressed solve cache. The HTTP layer
// (internal/server/transport) talks to it only through exported methods —
// no handler reaches into a job's guts — and execution lanes hide behind
// the Backend interface, so a multi-process deployment changes this
// package's wiring, not its callers.
//
// Routing: every job's canonical instance key (store.Instance) is
// consistent-hashed onto one Backend. With the default single local
// backend this is invisible; with several, identical instances always land
// on the same lane, which is what makes per-lane caches and data locality
// work when lanes become separate processes.
package scheduler

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mthplace/internal/core"
	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/internal/journal"
	"mthplace/internal/netlist"
	"mthplace/internal/obs"
	"mthplace/internal/par"
	"mthplace/internal/server/store"
)

// Submission errors beyond validation failures (which the transport maps
// to 400).
var (
	// ErrNotAccepting rejects submissions during shutdown (503).
	ErrNotAccepting = errors.New("server is shutting down")
	// ErrJournal rejects a submission whose acceptance record could not be
	// made durable (500).
	ErrJournal = errors.New("job journal write failed")
)

// Options tunes the scheduler.
type Options struct {
	// Workers is the total number of jobs run concurrently, divided across
	// the backends (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting behind the workers
	// across all backends (default 16); submissions beyond a backend's
	// share get ErrQueueFull.
	QueueDepth int
	// Backends is the number of in-process execution lanes jobs are
	// consistent-hash routed across (default 1, or 0 when Remotes are
	// configured — a pure coordinator runs nothing locally). Remote lanes
	// are additional: the ring spans Backends + len(Remotes) lanes.
	Backends int
	// Remotes lists worker base URLs ("http://host:port"); each becomes a
	// Remote lane dispatching jobs to a peer mthserved -worker process.
	Remotes []string
	// RemoteWorkers is the concurrent-dispatch complement per remote lane
	// (default 2): how many jobs one worker is sent at a time.
	RemoteWorkers int
	// LeaseDuration bounds remote job ownership (default 15s): a dispatched
	// job whose worker stops answering heartbeats for this long is
	// re-routed to another lane.
	LeaseDuration time.Duration
	// RerouteMax bounds how many times one job may move lanes after
	// dispatch failures or lease expiries (default 3); past it the job
	// fails with errs.ErrUnavailable.
	RerouteMax int
	// ProbeInterval is the health-prober heartbeat cadence per remote lane
	// (default 2s).
	ProbeInterval time.Duration
	// BreakerThreshold consecutive dispatch/probe failures open a remote
	// lane's circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay (default 2×
	// ProbeInterval).
	BreakerCooldown time.Duration
	// PoolJobs bounds the shared worker pool that jobs without a private
	// Jobs setting draw from (default GOMAXPROCS).
	PoolJobs int
	// MaxRetries is how many times a job failing with errs.ErrTransient is
	// re-run before the failure is reported (default 2; negative disables
	// retries). Panics, timeouts, cancels and infeasibility never retry.
	MaxRetries int
	// RetryBase is the first backoff delay; attempt n waits RetryBase·2ⁿ
	// plus a deterministic jitter (default 25ms).
	RetryBase time.Duration
	// JournalDir, when set, enables the crash-safe job journal: accepted
	// jobs are recorded before queueing, and on startup any job the
	// journal shows unfinished is re-queued with its original ID.
	JournalDir string
	// DefaultSolver is the RAP solver backend applied to jobs that name
	// none: "milp" (the default when empty), "rap" or "greedy".
	DefaultSolver string
	// CacheEntries bounds the content-addressed solve cache; 0 disables
	// caching entirely.
	CacheEntries int
	// ResultCapacity bounds the terminal-outcome store (default
	// store.DefaultResultCapacity).
	ResultCapacity int
	// Logger receives structured diagnostics (journal replay, job
	// lifecycle). Nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.Backends <= 0 {
		// A coordinator with remote lanes defaults to running nothing
		// locally; without remotes one local lane is the floor.
		if len(o.Remotes) > 0 {
			o.Backends = 0
		} else {
			o.Backends = 1
		}
	}
	if o.RemoteWorkers <= 0 {
		o.RemoteWorkers = 2
	}
	if o.LeaseDuration <= 0 {
		o.LeaseDuration = 15 * time.Second
	}
	if o.RerouteMax <= 0 {
		o.RerouteMax = 3
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * o.ProbeInterval
	}
	if o.PoolJobs <= 0 {
		o.PoolJobs = runtime.GOMAXPROCS(0)
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	return o
}

// Scheduler runs placement jobs from bounded per-backend queues.
type Scheduler struct {
	opt   Options
	pool  *par.Pool // shared budget for jobs without a private bound
	stats *stats
	jrnl  *journal.Journal // nil when journaling is off
	log   *slog.Logger

	cache   *store.Cache // nil when caching is off
	results *store.Results
	traces  *store.Traces // per-job distributed span sets

	backends []Backend
	ring     *ring

	// reg is this scheduler's private metric registry: job-lifecycle and
	// cache series live here (not in obs.Default) so multiple schedulers in
	// one process — the normal situation in tests — never cross-accumulate.
	reg       *obs.Registry
	mStarted  *obs.Counter
	mFinished *obs.Counter
	mDegraded *obs.Counter
	mRetries  *obs.Counter
	mPanics   *obs.Counter
	mInflight *obs.Gauge
	mReroutes *obs.Counter
	mLeaseExp *obs.Counter

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	// Lease monitor lifetime (armed only when remote lanes exist).
	leaseStop chan struct{}
	leaseWG   sync.WaitGroup

	mu        sync.Mutex // guards jobs/order, intake, and every Enqueue
	jobs      map[string]*Job
	order     []string // submission order, for stable listings
	accepting bool
	seq       atomic.Int64

	// execFn runs a job's flows; tests swap it via SetExec.
	execFn ExecFunc
}

// New starts a scheduler. When a journal directory is configured, jobs the
// journal shows accepted but unfinished (a previous process crashed under
// them) are re-queued, with their original IDs, before the workers start.
// Call Shutdown to stop it.
func New(opt Options) (*Scheduler, error) {
	opt = opt.withDefaults()
	switch opt.DefaultSolver {
	case "", core.BackendMILP, core.BackendRAP, core.BackendGreedy:
	default:
		return nil, fmt.Errorf("scheduler: unknown default solver %q (want %s, %s or %s)",
			opt.DefaultSolver, core.BackendMILP, core.BackendRAP, core.BackendGreedy)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		opt:        opt,
		pool:       par.NewPool(opt.PoolJobs),
		stats:      newStats(opt.Workers),
		log:        opt.Logger,
		results:    store.NewResults(opt.ResultCapacity),
		traces:     store.NewTraces(opt.ResultCapacity),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		accepting:  true,
	}
	if s.log == nil {
		s.log = obs.Nop()
	}
	s.reg = obs.NewRegistry()
	s.mStarted = s.reg.Counter("jobs_started_total", "Jobs handed to a worker since server start.", nil)
	s.mFinished = s.reg.Counter("jobs_finished_total", "Jobs that reached a terminal state since server start.", nil)
	s.mDegraded = s.reg.Counter("jobs_degraded", "Jobs that settled below the ILP-optimum solve rung.", nil)
	s.mRetries = s.reg.Counter("job_retries", "Transient-failure re-executions.", nil)
	s.mPanics = s.reg.Counter("job_panics", "Panics recovered at the worker boundary.", nil)
	s.mInflight = s.reg.Gauge("jobs_inflight", "Jobs currently running (started minus finished).", nil)
	s.mReroutes = s.reg.Counter("job_reroutes_total", "Jobs moved to another lane after a dispatch failure or lease expiry.", nil)
	s.mLeaseExp = s.reg.Counter("lease_expirations_total", "Remote job leases that expired without a result.", nil)
	s.execFn = s.execute

	if s.cache = store.NewCache(opt.CacheEntries); s.cache != nil {
		hits, misses := obs.CacheHits(s.reg), obs.CacheMisses(s.reg)
		s.cache.SetHooks(func() { hits.Inc() }, func() { misses.Inc() })
	}

	var pending []journal.PendingJob
	if opt.JournalDir != "" {
		entries, skipped, err := journal.ReadAll(opt.JournalDir)
		if err != nil {
			cancel()
			return nil, err
		}
		if skipped > 0 {
			s.log.Warn("journal: skipped unparseable lines", "dir", opt.JournalDir, "lines", skipped)
		}
		var maxSeq int64
		pending, maxSeq = journal.Pending(entries)
		s.seq.Store(maxSeq)
		if len(pending) > 0 {
			s.log.Info("journal: replaying unfinished jobs", "dir", opt.JournalDir, "jobs", len(pending))
		}
		if s.jrnl, err = journal.Open(opt.JournalDir); err != nil {
			cancel()
			return nil, err
		}
	}

	lanes := opt.Backends + len(opt.Remotes)
	s.ring = newRing(lanes)
	// Replayed jobs must all fit ahead of live traffic, so each lane's
	// queue is sized past its configured share by however many of the
	// journal's jobs route to it.
	replayed, perLane := s.prepareReplay(pending, lanes)
	for i := 0; i < opt.Backends; i++ {
		s.backends = append(s.backends,
			NewLocal(fmt.Sprintf("local-%d", i), share(opt.Workers, opt.Backends, i), share(opt.QueueDepth, lanes, i)+perLane[i]))
	}
	for ri, addr := range opt.Remotes {
		i := opt.Backends + ri
		name := fmt.Sprintf("remote-%d", ri)
		labels := obs.Labels{"backend": name}
		circuit := s.reg.Gauge("backend_circuit_state", "Remote lane circuit state (0 closed, 1 open, 2 half-open).", labels)
		rtt := s.reg.Gauge("backend_heartbeat_rtt_seconds", "Last successful heartbeat round trip per remote lane.", labels)
		fails := s.reg.Counter("dispatch_failures_total", "Transport-level dispatch failures per remote lane.", labels)
		s.backends = append(s.backends, NewRemote(name, RemoteOptions{
			Addr:              addr,
			Dispatchers:       opt.RemoteWorkers,
			Depth:             share(opt.QueueDepth, lanes, i) + perLane[i],
			ProbeInterval:     opt.ProbeInterval,
			BreakerThreshold:  opt.BreakerThreshold,
			BreakerCooldown:   opt.BreakerCooldown,
			OnCircuit:         func(st string) { circuit.Set(circuitValue(st)) },
			OnRTT:             func(d time.Duration) { rtt.Set(d.Seconds()) },
			OnDispatchFailure: func() { fails.Inc() },
			OnSpans:           s.ingestWorkerSpans,
		}))
	}
	// Pre-register each lane's RED series so a scrape shows the families
	// (with zero values) before the first job lands.
	for _, b := range s.backends {
		s.laneRequests(b.Name(), "ok")
		s.laneSeconds(b.Name())
	}
	for _, rj := range replayed {
		s.jobs[rj.job.ID] = rj.job
		s.order = append(s.order, rj.job.ID)
		if rj.backend >= 0 {
			// The lane name is assigned from the live topology, never from
			// the journal: the ring may have changed shape between crash
			// and restart, and a recorded lane may no longer exist.
			rj.job.backend = s.backends[rj.backend].Name()
			// Cannot fail: the queue was sized for exactly these jobs.
			_ = s.backends[rj.backend].Enqueue(rj.job)
		}
	}
	for _, b := range s.backends {
		b.Start(s.runnerFor(b))
	}
	if len(opt.Remotes) > 0 {
		s.startLeaseLoop()
	}
	return s, nil
}

// circuitValue maps a circuit state to its gauge encoding.
func circuitValue(state string) float64 {
	switch state {
	case CircuitOpen:
		return 1
	case CircuitHalfOpen:
		return 2
	default:
		return 0
	}
}

// runnerFor binds a lane to the job-lifecycle loop, so the loop knows
// whether to execute in process or dispatch over the wire.
func (s *Scheduler) runnerFor(b Backend) func(*Job) {
	return func(jb *Job) { s.runJobOn(b, jb) }
}

// share splits total across n lanes as evenly as possible, never below 1:
// lane i gets the i-th element of the fairest integer partition.
func share(total, n, i int) int {
	v := total / n
	if i < total%n {
		v++
	}
	if v < 1 {
		v = 1
	}
	return v
}

// replayJob pairs a reconstructed job with its routed backend (-1 when the
// job failed validation and is already terminal).
type replayJob struct {
	job     *Job
	backend int
}

// prepareReplay rebuilds journaled jobs and routes them through the live
// ring of lanes lanes in total, returning the jobs plus the per-lane count
// (to size the queues). Routing deliberately ignores whatever lane the journal
// recorded: the topology may have changed between crash and restart (lanes
// added, removed, or renamed), and the consistent hash over the current
// ring is the only authority. A request that no longer validates —
// possible only if the journal was edited or the format drifted — is
// journaled as failed rather than wedging recovery.
func (s *Scheduler) prepareReplay(pending []journal.PendingJob, lanes int) ([]replayJob, []int) {
	perBackend := make([]int, lanes)
	out := make([]replayJob, 0, len(pending))
	for _, p := range pending {
		jb := &Job{ID: p.ID, seqn: p.Seq, state: StateQueued, submitted: time.Now(), replayed: true}
		var err error
		if uerr := json.Unmarshal(p.Request, &jb.req); uerr != nil {
			err = fmt.Errorf("journal replay: %w", uerr)
		} else if jb.spec, jb.flows, err = jb.req.validate(); err != nil {
			err = fmt.Errorf("journal replay: %w", err)
		}
		// The request JSON round-trips the client's traceparent, so a
		// replayed job re-adopts the original trace: its post-crash timeline
		// lands in the same distributed trace the client started.
		jb.initTrace()
		rj := replayJob{job: jb, backend: -1}
		if err != nil {
			jb.state = StateFailed
			jb.err = err
			jb.finished = time.Now()
			_ = s.jrnl.Append(journal.Entry{Seq: p.Seq, Job: jb.ID, Event: journal.EventFailed, Error: err.Error()})
			s.traceRoot(jb)
			s.log.Warn("journal: replayed job failed validation", "job", jb.ID, "err", err)
		} else {
			jb.keys = s.instanceKeys(&jb.req)
			rj.backend = s.ring.pick(routingKey(jb.keys))
			perBackend[rj.backend]++
			s.log.Info("journal: re-queued job", "job", jb.ID, "testcase", jb.spec.Name())
		}
		out = append(out, rj)
	}
	return out, perBackend
}

// instanceKeys returns the canonical cache key of each flow the request
// will run, in flow order.
func (s *Scheduler) instanceKeys(req *JobRequest) []store.Key {
	_, ids, err := req.validate()
	if err != nil {
		return nil
	}
	keys := make([]store.Key, len(ids))
	for i, id := range ids {
		keys[i] = req.instance(id, s.opt.DefaultSolver).Key()
	}
	return keys
}

// routingKey folds a job's per-flow keys into the single string the ring
// hashes, so identical instance sets always route to the same backend.
func routingKey(keys []store.Key) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = string(k)
	}
	return strings.Join(parts, "|")
}

// Shutdown gracefully stops the scheduler: intake closes immediately (new
// submissions get ErrNotAccepting), jobs still waiting in queues are
// canceled, and in-flight jobs are drained to completion. If ctx expires
// first, the in-flight jobs' contexts are canceled and Shutdown waits for
// them to unwind (bounded by one solver/Lloyd iteration), returning ctx's
// error.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		for _, b := range s.backends {
			b.Wait()
		}
		return nil
	}
	s.accepting = false
	for _, b := range s.backends {
		b.Close() // safe: submissions check accepting under mu
	}
	// Queued jobs will still be popped by workers, but cancel them now so
	// the workers skip straight past them.
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		canceled := j.state == StateQueued
		if canceled {
			j.state = StateCanceled
			j.err = errs.ErrCanceled
			j.finished = time.Now()
		}
		j.mu.Unlock()
		if canceled {
			s.journal(j, journal.EventCanceled, errs.ErrCanceled)
			// A job that had started and was then re-queued (reroute, lease
			// expiry) counted a start; going terminal here must count the
			// finish or the inflight gauge leaks one forever.
			if j.countFinish() {
				s.stats.jobFinished(0)
				s.mFinished.Inc()
			}
			s.traceRoot(j)
		}
	}
	s.mu.Unlock()
	// The monitor must not re-route into lanes that just closed; its
	// accepting check makes that impossible, and stopping it here (before
	// waiting on the lanes) means no sweep outlives the scheduler.
	s.stopLeaseLoop()

	done := make(chan struct{})
	go func() {
		for _, b := range s.backends {
			b.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
		_ = s.jrnl.Close()
		return nil
	case <-ctx.Done():
		s.baseCancel() // abort in-flight jobs
		<-done
		_ = s.jrnl.Close()
		return ctx.Err()
	}
}

// SetExec swaps the job-execution function. It exists for tests that need
// controllable flows (panics, transients, slow jobs); production wiring
// never calls it. Must be called before any job runs.
func (s *Scheduler) SetExec(fn ExecFunc) {
	s.mu.Lock()
	s.execFn = fn
	s.mu.Unlock()
}

func (s *Scheduler) exec() ExecFunc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execFn
}

// runJobOn executes one attempt of a job on lane b: in process for local
// lanes (a shared Runner drives the flows, which is what makes HTTP results
// byte-identical to library results), over the wire for remote lanes.
// Transient failures are retried with exponential backoff on the same lane;
// a remote attempt that is still failing with ErrUnavailable after its
// retries is re-routed through the live ring instead of failing the job.
// Every terminal effect is gated by beginFinish on the attempt's epoch, so
// an attempt the lease monitor re-routed away commits nothing — the
// exactly-once half of the lease protocol.
func (s *Scheduler) runJobOn(b Backend, jb *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	if jb.req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(jb.req.TimeoutMS)*time.Millisecond)
	}
	defer cancel()
	epoch, ok := jb.claim(cancel)
	if !ok {
		return // canceled while queued
	}
	log := s.log.With("job", jb.ID, "trace_id", jb.TraceID())
	if firstClaim(epoch) {
		s.journal(jb, journal.EventStarted, nil)
	}
	if jb.countStart() {
		s.stats.jobStarted()
		s.mStarted.Inc()
	}
	rb, remote := b.(*Remote)
	if remote {
		deadline := time.Now().Add(s.opt.LeaseDuration)
		jb.setLease(epoch, deadline)
		s.journalLeased(jb, b.Name(), deadline)
		stopRenew := s.startLeaseRenewal(ctx, jb, epoch, rb)
		defer stopRenew()
	}
	log.Debug("job started", "testcase", jb.spec.Name(), "lane", b.Name())
	start := time.Now()

	// This attempt's share of the distributed trace: a dispatch span under
	// the job's root, with the attempt's flow/solver spans (local execution)
	// or the WireJob traceparent (remote dispatch) nesting under it. The
	// records are ingested on every exit path — a failed or re-routed
	// attempt's timeline is part of the job's story.
	tr := obs.NewTracerFor(procCoordinator)
	tctx := obs.WithSpanContext(obs.WithTracer(ctx, tr), jb.rootSpan())
	laneOutcome := "ok"
	defer func() {
		s.recordLaneAttempt(b.Name(), laneOutcome, time.Since(start))
		s.ingestAttempt(jb, tr.Records())
	}()
	dctx, dsp := obs.StartSpanCtx(tctx, "dispatch")
	dsp.SetArg("lane", b.Name())
	dsp.SetArg("epoch", epoch)
	defer dsp.End()

	var res *ExecResult
	var err error
	for attempt := 0; ; attempt++ {
		jb.noteAttempt()
		if remote {
			res, err = rb.Execute(dctx, jb)
		} else {
			res, err = s.safeExec(dctx, jb)
		}
		if err == nil {
			err = errs.FromContext(ctx) // classify deadline vs cancel post-hoc
		}
		if !s.shouldRetry(ctx, err, attempt) {
			break
		}
		s.stats.jobRetried()
		s.mRetries.Inc()
		obs.Instant(dctx, "retry", map[string]any{"attempt": attempt + 1, "err": err.Error()})
		log.Warn("job retrying after transient failure", "attempt", attempt+1, "err", err)
		select {
		case <-time.After(backoff(s.opt.RetryBase, jb.ID, attempt)):
		case <-ctx.Done():
		}
	}
	if err != nil {
		dsp.SetArg("error", err.Error())
	}
	if remote && err != nil && ctx.Err() == nil && errors.Is(err, errs.ErrUnavailable) {
		// The lane, not the job, is the problem: move the job elsewhere.
		if s.reroute(jb, epoch) {
			laneOutcome = "rerouted"
			return // a new attempt on another lane owns the job now
		}
	}
	if !jb.beginFinish(epoch) {
		laneOutcome = "rerouted"
		return // re-routed away: a newer epoch owns the job, drop our result
	}
	if cause := jb.takeFailCause(); cause != nil && err != nil {
		err = cause // the lease monitor's verdict, not our cancellation echo
	}
	degraded := false
	if err == nil && res != nil && degradedResults(res.Metrics) {
		degraded = true
		jb.noteDegraded()
		s.stats.jobDegraded()
		s.mDegraded.Inc()
	}
	if err == nil && res != nil {
		s.results.Put(&store.Outcome{Job: jb.ID, Metrics: res.Metrics, Placements: res.Placements})
		// Only deterministic results are cacheable: a degraded solve's
		// output depends on wall-clock budgets, so replaying it would break
		// the cache's bit-identity contract.
		if !degraded && jb.req.cacheWrite() && len(jb.keys) == len(jb.flows) {
			for i, id := range jb.flows {
				s.cache.Put(jb.keys[i], store.Entry{Metrics: res.Metrics[id], Placement: res.Placements[id]})
			}
		}
	}
	jb.finish(err)
	s.journal(jb, terminalEvent(jb), err)
	if jb.countFinish() {
		s.stats.jobFinished(time.Since(start))
		s.mFinished.Inc()
	}
	if err != nil {
		laneOutcome = "error"
		log.Warn("job finished with error", "state", terminalEvent(jb), "err", err, "dur", time.Since(start))
	} else {
		log.Info("job done", "dur", time.Since(start))
	}
	dsp.End()
	s.traceRoot(jb)
}

// safeExec runs the job's flows behind a recover boundary. The flow layer
// has its own boundary, so this one catches what remains: bugs in the
// scheduler itself, test stubs, and anything a future ExecFunc does wrong.
// One panicking job must cost exactly one 500, never the daemon.
func (s *Scheduler) safeExec(ctx context.Context, jb *Job) (res *ExecResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.stats.jobPanicked()
			s.mPanics.Inc()
			err = errs.FromPanic(rec, "scheduler: job %s", jb.ID)
		}
	}()
	return s.exec()(ctx, jb)
}

// shouldRetry allows another attempt only for transient failures, within
// the retry budget, while the job's context is still live. Panics are
// excluded even when the panic value carried a transient error: a panic
// means a bug, and re-running bugs is chaos of the wrong kind.
func (s *Scheduler) shouldRetry(ctx context.Context, err error, attempt int) bool {
	return attempt < s.opt.MaxRetries &&
		err != nil &&
		errors.Is(err, errs.ErrTransient) &&
		!errors.Is(err, errs.ErrPanic) &&
		ctx.Err() == nil
}

// backoff is the delay before retry attempt+1: base·2ᵃᵗᵗᵉᵐᵖᵗ plus a jitter
// in [0, base) derived from the job ID, so concurrent retries de-correlate
// without the schedule becoming nondeterministic for a given job.
func backoff(base time.Duration, jobID string, attempt int) time.Duration {
	h := fnv.New64a()
	_, _ = h.Write([]byte(jobID))
	_, _ = h.Write([]byte{byte(attempt)})
	jitter := time.Duration(h.Sum64() % uint64(base))
	return base<<uint(attempt) + jitter
}

// degradedResults reports whether any flow in the job settled on a lower
// rung of the solve ladder than the proven ILP optimum.
func degradedResults(results map[flow.ID]flow.Metrics) bool {
	for _, m := range results {
		if m.SolveDegraded {
			return true
		}
	}
	return false
}

// journal appends a lifecycle event for jb; a nil journal is a no-op.
// Post-acceptance events are best-effort: losing one means a deterministic
// job may be re-run after a crash, which is safe.
func (s *Scheduler) journal(jb *Job, event string, err error) {
	if s.jrnl == nil {
		return
	}
	e := journal.Entry{Seq: jb.seqn, Job: jb.ID, Event: event}
	if err != nil {
		e.Error = err.Error()
	}
	_ = s.jrnl.Append(e)
}

// terminalEvent maps a finished job's state to its journal event.
func terminalEvent(jb *Job) string {
	switch state, _ := jb.Snapshot(); state {
	case StateCanceled:
		return journal.EventCanceled
	case StateFailed:
		return journal.EventFailed
	default:
		return journal.EventDone
	}
}

// execute is the production ExecFunc: it drives the shared RunRequest core
// (also used verbatim by the worker-mode server) with this scheduler's
// pool, solver default and latency stats.
func (s *Scheduler) execute(ctx context.Context, jb *Job) (*ExecResult, error) {
	// Solver progress (stage transitions, MILP incumbents, k-means
	// iterations) streams into the job's live view; the job's logger is
	// scoped with its ID and trace so concurrent jobs' diagnostics stay
	// attributable and grep-able by trace ID across processes.
	ctx = obs.WithProgress(ctx, jb.noteProgress)
	ctx = obs.WithLogger(ctx, s.log.With("job", jb.ID, "trace_id", jb.TraceID()))
	solver := jb.req.Solver
	if solver == "" {
		solver = s.opt.DefaultSolver
	}
	// Profiler labels make a CPU profile attributable the same way: samples
	// under a hot solver goroutine carry the job and solver that ran it.
	var res *ExecResult
	var err error
	pprof.Do(ctx, pprof.Labels("job", jb.ID, "solver", solver), func(ctx context.Context) {
		res, err = RunRequest(ctx, jb.Request(), s.pool, s.opt.DefaultSolver, s.stats.recordFlow)
	})
	return res, err
}

// PlacementDigest is the SHA-256 of the design's instance positions in
// instance order, little-endian X then Y. Two runs produce the same digest
// iff every cell landed on the same site — the bit-identity witness the
// solve cache stores and the differential tests compare.
func PlacementDigest(d *netlist.Design) string {
	h := sha256.New()
	var buf [16]byte
	for _, p := range d.Positions() {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(p.X))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(p.Y))
		_, _ = h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Submit validates and enqueues one job, or serves it from the solve cache.
// Errors: validation failures (client errors), ErrQueueFull,
// ErrNotAccepting, or ErrJournal.
func (s *Scheduler) Submit(req JobRequest) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitLocked(req)
}

// SubmitBatch submits each request independently under one intake lock, so
// the batch is contiguous in the job ordering. Result slots pair 1:1 with
// requests: each has either a job handle or that request's rejection —
// one oversized or malformed instance does not sink its siblings.
func (s *Scheduler) SubmitBatch(reqs []JobRequest) []BatchItem {
	out := make([]BatchItem, len(reqs))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, req := range reqs {
		out[i].Job, out[i].Err = s.submitLocked(req)
	}
	return out
}

// BatchItem is one slot of a SubmitBatch result.
type BatchItem struct {
	Job *Job
	Err error
}

func (s *Scheduler) submitLocked(req JobRequest) (*Job, error) {
	spec, ids, err := req.validate()
	if err != nil {
		return nil, err
	}
	if !s.accepting {
		return nil, ErrNotAccepting
	}
	seq := s.seq.Add(1)
	jb := &Job{
		ID:        fmt.Sprintf("job-%d", seq),
		seqn:      seq,
		state:     StateQueued,
		req:       req,
		flows:     ids,
		spec:      spec,
		submitted: time.Now(),
	}
	jb.keys = make([]store.Key, len(ids))
	for i, id := range ids {
		jb.keys[i] = req.instance(id, s.opt.DefaultSolver).Key()
	}
	jb.initTrace()

	// Cache fast path: when every flow of this instance is resident, the
	// job never touches a queue — it is born terminal, with the cached
	// metrics as its outcome. The journal still records acceptance and
	// completion so replay after a crash mid-append stays consistent.
	if req.cacheRead() {
		if entries, ok := s.cache.GetAll(jb.keys); ok {
			if err := s.journalSubmit(jb, req, ""); err != nil {
				return nil, err
			}
			outcome := &store.Outcome{
				Job:        jb.ID,
				Metrics:    make(map[flow.ID]flow.Metrics, len(ids)),
				Placements: make(map[flow.ID]string, len(ids)),
				CacheHit:   true,
			}
			for i, id := range ids {
				outcome.Metrics[id] = entries[i].Metrics
				outcome.Placements[id] = entries[i].Placement
			}
			jb.completeFromCache()
			s.results.Put(outcome)
			s.journal(jb, journal.EventDone, nil)
			s.jobs[jb.ID] = jb
			s.order = append(s.order, jb.ID)
			s.traceInstant(jb, "cache_hit", map[string]any{"flows": len(ids)})
			s.traceRoot(jb)
			s.log.Info("job served from cache", "job", jb.ID, "trace_id", jb.TraceID(), "testcase", spec.Name())
			return jb, nil
		}
	}

	idx := s.ring.pick(routingKey(jb.keys))
	be := s.backends[idx]
	// Reject over-capacity before journaling: a 429'd job must leave no
	// acceptance record, or a later restart would replay work the client
	// was told we refused. Every Enqueue happens under s.mu, so the room
	// observed here cannot vanish before the send below.
	if be.Depth() >= be.Capacity() {
		return nil, ErrQueueFull
	}
	jb.backend = be.Name()
	if err := s.journalSubmit(jb, req, be.Name()); err != nil {
		return nil, err
	}
	if err := be.Enqueue(jb); err != nil {
		return nil, err
	}
	s.jobs[jb.ID] = jb
	s.order = append(s.order, jb.ID)
	return jb, nil
}

// journalSubmit makes the acceptance record durable before the job becomes
// visible: this is the one journal write whose failure rejects the request,
// because a job we cannot promise to replay is a job we must not accept.
func (s *Scheduler) journalSubmit(jb *Job, req JobRequest, backend string) error {
	if s.jrnl == nil {
		return nil
	}
	raw, err := json.Marshal(req)
	if err == nil {
		err = s.jrnl.Append(journal.Entry{Seq: jb.seqn, Job: jb.ID, Event: journal.EventSubmitted, Request: raw, Backend: backend, Trace: jb.TraceID()})
	}
	if err != nil {
		return fmt.Errorf("%w: %s", ErrJournal, err)
	}
	return nil
}

// Job returns a job by ID (nil when unknown).
func (s *Scheduler) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Views lists every job in submission order.
func (s *Scheduler) Views() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	views := make([]JobView, 0, len(ids))
	for _, id := range ids {
		if j := s.Job(id); j != nil {
			views = append(views, j.View())
		}
	}
	return views
}

// Cancel requests cancellation of a job. found reports whether the ID is
// known; ok whether the job was still cancelable.
func (s *Scheduler) Cancel(id string) (jb *Job, ok bool) {
	jb = s.Job(id)
	if jb == nil {
		return nil, false
	}
	ok = jb.requestCancel()
	// A job canceled while still queued goes terminal right here, with no
	// worker to journal it; a running one is journaled when it unwinds.
	if state, _ := jb.Snapshot(); ok && state.Terminal() {
		s.journal(jb, journal.EventCanceled, errs.ErrCanceled)
		// The queued job may still have counted a start on an earlier
		// attempt (re-queued by reroute or lease expiry); settle the
		// inflight accounting and close its timeline here, because no
		// runJobOn will ever own it again.
		if jb.countFinish() {
			s.stats.jobFinished(0)
			s.mFinished.Inc()
		}
		s.traceRoot(jb)
	}
	return jb, ok
}

// Outcome returns a finished job's stored result.
func (s *Scheduler) Outcome(id string) (*store.Outcome, bool) {
	return s.results.Get(id)
}

// Accepting reports whether intake is open (false during shutdown).
func (s *Scheduler) Accepting() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepting
}

// BackendStat describes one execution lane for /stats. The remote-only
// fields (Addr, Circuit, RTT, DispatchFailures) are omitted for local
// lanes.
type BackendStat struct {
	Name     string `json:"name"`
	Depth    int    `json:"depth"`
	Capacity int    `json:"capacity"`
	Workers  int    `json:"workers"`
	// Addr is the remote worker's base URL.
	Addr string `json:"addr,omitempty"`
	// Circuit is the lane's breaker state: closed, open or half-open.
	Circuit string `json:"circuit,omitempty"`
	// HeartbeatRTTms is the last successful heartbeat round trip.
	HeartbeatRTTms float64 `json:"heartbeat_rtt_ms,omitempty"`
	// DispatchFailures counts transport-level dispatch failures.
	DispatchFailures int64 `json:"dispatch_failures,omitempty"`
}

// CacheStat summarises the solve cache for /stats.
type CacheStat struct {
	Enabled  bool  `json:"enabled"`
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// StatsSnapshot is everything the /stats endpoint reports, gathered in one
// consistent pass.
type StatsSnapshot struct {
	UptimeSeconds float64
	QueueDepth    int // sum over backends (legacy single-queue field)
	QueueCapacity int
	Workers       int
	BusyWorkers   int
	Utilization   float64
	PoolJobs      int
	JobCounts     map[State]int
	Started       int64
	Finished      int64
	Inflight      int64
	Degraded      int64
	Retries       int64
	Panics        int64
	// Reroutes counts jobs moved to another lane after a dispatch failure
	// or lease expiry; LeaseExpirations counts remote leases that lapsed.
	Reroutes         int64
	LeaseExpirations int64
	FlowLatency      map[string]FlowLatency
	Backends         []BackendStat
	Cache            CacheStat
}

// Stats gathers the full observability snapshot.
func (s *Scheduler) Stats() StatsSnapshot {
	busy, util, perFlow := s.stats.snapshot()
	degraded, retries, panics := s.stats.resilience()
	reroutes, leaseExp := s.stats.faults()
	started, finished, inflight := s.stats.inflight()
	snap := StatsSnapshot{
		UptimeSeconds:    s.stats.uptime().Seconds(),
		QueueCapacity:    s.opt.QueueDepth,
		Workers:          s.opt.Workers,
		BusyWorkers:      busy,
		Utilization:      util,
		PoolJobs:         s.pool.Jobs(),
		JobCounts:        map[State]int{},
		Started:          started,
		Finished:         finished,
		Inflight:         inflight,
		Degraded:         degraded,
		Retries:          retries,
		Panics:           panics,
		Reroutes:         reroutes,
		LeaseExpirations: leaseExp,
		FlowLatency:      perFlow,
	}
	hits, misses := s.cache.Stats()
	snap.Cache = CacheStat{
		Enabled:  s.cache != nil,
		Entries:  s.cache.Len(),
		Capacity: s.cache.Capacity(),
		Hits:     hits,
		Misses:   misses,
	}
	s.mu.Lock()
	for _, b := range s.backends {
		snap.QueueDepth += b.Depth()
		bs := BackendStat{
			Name: b.Name(), Depth: b.Depth(), Capacity: b.Capacity(), Workers: b.Workers(),
		}
		if rb, ok := b.(*Remote); ok {
			bs.Addr = rb.Addr()
			bs.Circuit = rb.CircuitState()
			bs.HeartbeatRTTms = float64(rb.LastRTT()) / float64(time.Millisecond)
			bs.DispatchFailures = rb.DispatchFailures()
		}
		snap.Backends = append(snap.Backends, bs)
	}
	for _, id := range s.order {
		st, _ := s.jobs[id].Snapshot()
		snap.JobCounts[st]++
	}
	s.mu.Unlock()
	return snap
}

// Resilience returns the degraded/retries/panics counters (test seam).
func (s *Scheduler) Resilience() (degraded, retries, panics int64) {
	return s.stats.resilience()
}

// WriteProm renders the scheduler's private metric registry in Prometheus
// text exposition format, refreshing the inflight gauge first. The caller
// (transport) appends obs.Default for the process-wide series.
func (s *Scheduler) WriteProm(w io.Writer) error {
	_, _, inflight := s.stats.inflight()
	s.mInflight.Set(float64(inflight))
	return s.reg.WriteProm(w)
}

// Cache exposes the solve cache (nil when disabled) for tests and stats.
func (s *Scheduler) Cache() *store.Cache { return s.cache }
