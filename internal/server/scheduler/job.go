package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mthplace/internal/core"
	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/internal/obs"
	"mthplace/internal/par"
	"mthplace/internal/server/store"
	"mthplace/internal/synth"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: Queued -> Running -> Done | Failed | Canceled. A queued
// job canceled before a worker claims it goes straight to Canceled, and a
// job fully served from the solve cache goes straight to Done.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state can no longer change.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Cache-control values for JobRequest.Cache (the HTTP layer also maps the
// standard Cache-Control request header onto them).
const (
	// CacheDefault ("" on the wire): read and populate the solve cache.
	CacheDefault = ""
	// CacheBypass ("bypass", header no-cache): skip the lookup — always
	// solve — but still store the result for later submissions.
	CacheBypass = "bypass"
	// CacheNoStore ("no-store", header no-store): serve from cache when
	// possible, but never store this job's result.
	CacheNoStore = "no-store"
	// CacheOff ("off", header no-cache, no-store): neither read nor write.
	CacheOff = "off"
)

// JobRequest is the submit body (one element of a batch). A spec is
// selected either by Table II testcase name or given inline; the remaining
// fields override flow.DefaultConfig for this job only.
type JobRequest struct {
	// Testcase names a Table II spec (e.g. "des3_210"). Mutually exclusive
	// with Spec.
	Testcase string `json:"testcase,omitempty"`
	// Spec is an explicit synthesis spec.
	Spec *synth.Spec `json:"spec,omitempty"`
	// Flows lists the flow IDs to run, in order (1..5). Defaults to [5].
	Flows []int `json:"flows,omitempty"`
	// Scale multiplies the spec's cell count (default 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Seed selects the deterministic random stream (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Jobs bounds this job's private worker pool. 0 means the job shares
	// the scheduler's budgeted pool instead of getting its own. Not part of
	// the cache identity: results are bit-identical at any parallelism.
	Jobs int `json:"jobs,omitempty"`
	// FencePasses overrides the fence-aware legalization pass count.
	FencePasses int `json:"fence_passes,omitempty"`
	// Route additionally routes each result and fills post-route metrics.
	Route bool `json:"route,omitempty"`
	// TimeoutMS bounds the whole job; expiry surfaces as ErrTimeout (504).
	// Not part of the cache identity: a deadline that fired degrades the
	// result, and degraded results are never cached.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Solver selects the RAP solver backend for this job: "milp", "rap" or
	// "greedy". Empty uses the scheduler's default.
	Solver string `json:"solver,omitempty"`
	// Cache is the cache-control directive: "", "bypass", "no-store" or
	// "off" (see the Cache* constants).
	Cache string `json:"cache,omitempty"`
	// Traceparent is the client's W3C trace context ("00-<trace>-<span>-01");
	// the transport also maps the standard traceparent request header onto
	// it. The job adopts the client's TraceID so its whole fabric timeline
	// is joinable with the client's own tracing; an invalid value is ignored
	// (a fresh TraceID is minted), never rejected. Not part of the cache
	// identity: tracing is read-only with respect to placement.
	Traceparent string `json:"traceparent,omitempty"`
}

// validate resolves the spec and flow list, returning a client error when
// the request is malformed (mapped to 400).
func (r *JobRequest) validate() (synth.Spec, []flow.ID, error) {
	var spec synth.Spec
	switch {
	case r.Testcase != "" && r.Spec != nil:
		return spec, nil, errors.New("give testcase or spec, not both")
	case r.Testcase != "":
		found := false
		for _, s := range synth.TableII() {
			if s.Name() == r.Testcase || s.Circuit == r.Testcase {
				spec, found = s, true
				break
			}
		}
		if !found {
			return spec, nil, fmt.Errorf("unknown testcase %q", r.Testcase)
		}
	case r.Spec != nil:
		spec = *r.Spec
		if spec.Circuit == "" || spec.Cells <= 0 {
			return spec, nil, errors.New("inline spec needs circuit and cells > 0")
		}
	default:
		return spec, nil, errors.New("missing testcase or spec")
	}
	ids := []flow.ID{flow.Flow5}
	if len(r.Flows) > 0 {
		ids = ids[:0]
		for _, n := range r.Flows {
			id := flow.ID(n)
			if id < flow.Flow1 || id > flow.Flow5 {
				return spec, nil, fmt.Errorf("flow %d out of range 1..5", n)
			}
			ids = append(ids, id)
		}
	}
	if r.Scale < 0 {
		return spec, nil, errors.New("scale must be >= 0")
	}
	if r.Jobs < 0 || r.TimeoutMS < 0 || r.FencePasses < 0 {
		return spec, nil, errors.New("jobs, fence_passes and timeout_ms must be >= 0")
	}
	switch r.Solver {
	case "", core.BackendMILP, core.BackendRAP, core.BackendGreedy:
	default:
		return spec, nil, fmt.Errorf("unknown solver %q (want %s, %s or %s)",
			r.Solver, core.BackendMILP, core.BackendRAP, core.BackendGreedy)
	}
	switch r.Cache {
	case CacheDefault, CacheBypass, CacheNoStore, CacheOff:
	default:
		return spec, nil, fmt.Errorf("unknown cache directive %q (want %q, %q, %q or %q)",
			r.Cache, CacheDefault, CacheBypass, CacheNoStore, CacheOff)
	}
	return spec, ids, nil
}

// cacheRead/cacheWrite interpret the cache directive.
func (r *JobRequest) cacheRead() bool {
	return r.Cache == CacheDefault || r.Cache == CacheNoStore
}
func (r *JobRequest) cacheWrite() bool {
	return r.Cache == CacheDefault || r.Cache == CacheBypass
}

// instance builds the canonical cache identity of one flow of this request,
// with every default resolved (store package doc has the full contract).
func (r *JobRequest) instance(id flow.ID, defaultSolver string) store.Instance {
	def := flow.DefaultConfig()
	inst := store.Instance{
		Testcase:    r.Testcase,
		Spec:        r.Spec,
		Scale:       r.Scale,
		Seed:        r.Seed,
		FencePasses: r.FencePasses,
		Solver:      r.Solver,
		Route:       r.Route,
		Flow:        int(id),
	}
	if inst.Scale == 0 {
		inst.Scale = def.Synth.Scale
	}
	if inst.Seed == 0 {
		inst.Seed = def.Synth.Seed
	}
	if inst.FencePasses == 0 {
		inst.FencePasses = def.FencePasses
	}
	if inst.Solver == "" {
		inst.Solver = defaultSolver
	}
	if inst.Solver == "" {
		inst.Solver = core.BackendMILP
	}
	return inst
}

// config builds this job's flow configuration on top of the defaults.
// defaultSolver is the scheduler-wide backend applied when the request
// names none.
func (r *JobRequest) config(shared *par.Pool, defaultSolver string) flow.Config {
	cfg := flow.DefaultConfig()
	if r.Scale > 0 {
		cfg.Synth.Scale = r.Scale
	}
	if r.Seed != 0 {
		cfg.Synth.Seed = r.Seed
	}
	if r.FencePasses > 0 {
		cfg.FencePasses = r.FencePasses
	}
	if r.Jobs > 0 {
		cfg.Jobs = r.Jobs
	} else {
		cfg.Pool = shared
	}
	cfg.Core.Solve.Backend = r.Solver
	if cfg.Core.Solve.Backend == "" {
		cfg.Core.Solve.Backend = defaultSolver
	}
	return cfg
}

// ExecResult is what one execution of a job's flows produces: the metrics
// plus a SHA-256 digest of each flow's final placement (the proof that a
// cache hit replays the cold solve bit for bit).
type ExecResult struct {
	Metrics    map[flow.ID]flow.Metrics
	Placements map[flow.ID]string
}

// ExecFunc runs a job's flows. The scheduler's default implementation
// drives flow.Runner; tests swap in stubs via Scheduler.SetExec.
type ExecFunc func(ctx context.Context, jb *Job) (*ExecResult, error)

// Job is one placement run through the fabric. All mutable fields are
// guarded by mu; JSON rendering goes through View.
type Job struct {
	ID   string
	seqn int64 // journal sequence; immutable after construction

	mu        sync.Mutex
	state     State
	req       JobRequest
	flows     []flow.ID
	spec      synth.Spec
	keys      []store.Key // per-flow cache keys, aligned with flows
	backend   string      // backend the job was routed to ("" = cache hit)
	cacheHit  bool        // served from the solve cache without running
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       error
	cancel    context.CancelFunc
	attempts  int  // executions so far (1 + retries)
	degraded  bool // some flow settled below the ILP-optimum rung
	replayed  bool // re-queued from the journal after a crash
	progress  JobProgress

	// Remote-dispatch ownership. epoch counts claims: a re-routed job is
	// claimed again on its new lane, and only the attempt holding the
	// current epoch may terminalize the job — the exactly-once guard that
	// resolves a re-route racing its original completion. finishing latches
	// once the winning attempt starts committing its outcome, so the lease
	// monitor can never requeue a job whose result is being stored.
	epoch     int64
	finishing bool
	lease     time.Time // lease deadline; zero when not remotely leased
	reroutes  int       // times the job moved lanes after dispatch failure or lease expiry
	failCause error     // terminal error imposed by the lease monitor (overrides ctx errors)

	// Distributed-trace identity, fixed at submit (or journal replay).
	// trace.SpanID is the job's root span; traceParent is the client's span
	// ID when the submission carried a traceparent ("" otherwise).
	trace       obs.SpanContext
	traceParent string

	// Inflight accounting latches. started/finished metrics must pair
	// exactly once per job whatever path terminalizes it — first claim,
	// rerouted re-claim, cancel-while-requeued, shutdown — or
	// jobs_inflight drifts (see countStart/countFinish).
	startCounted  bool
	finishCounted bool
	rootTraced    bool // the terminal "job" root span has been recorded
}

// initTrace fixes the job's trace identity: the TraceID is adopted from a
// valid request traceparent (the client's trace) or minted fresh, and the
// root span gets its own ID. Called once, before the job is visible.
func (j *Job) initTrace() {
	if sc, ok := obs.ParseTraceparent(j.req.Traceparent); ok {
		j.trace = obs.SpanContext{TraceID: sc.TraceID, SpanID: obs.NewSpanID()}
		j.traceParent = sc.SpanID
		return
	}
	j.trace = obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
}

// TraceID returns the job's distributed trace ID.
func (j *Job) TraceID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace.TraceID
}

// rootSpan returns the job's root span context — the parent every dispatch
// span (and scheduler instant event) nests under.
func (j *Job) rootSpan() obs.SpanContext {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// countStart reports whether this call should count the job as started —
// true exactly once, on the first claim (replayed or not).
func (j *Job) countStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.startCounted {
		return false
	}
	j.startCounted = true
	return true
}

// countFinish reports whether this call should count the job as finished:
// true exactly once, and only for jobs whose start was counted. Paired with
// countStart it keeps started−finished (jobs_inflight) exact across every
// terminal path, including a job canceled while sitting re-queued between
// lanes — the path that previously leaked inflight forever.
func (j *Job) countFinish() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.startCounted || j.finishCounted {
		return false
	}
	j.finishCounted = true
	return true
}

// markRootTraced latches the terminal root-span record: whichever terminal
// path gets here first writes the single "job" span.
func (j *Job) markRootTraced() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rootTraced {
		return false
	}
	j.rootTraced = true
	return true
}

// JobProgress is the live solver-progress snapshot of a running job, fed by
// the observability event stream (flow stage transitions, MILP incumbents,
// k-means iterations). All fields are cumulative over the job's flows.
type JobProgress struct {
	// Stage is the flow stage most recently entered
	// (parse/cluster/solve/legalize/route).
	Stage string `json:"stage,omitempty"`
	// KMeansIterations counts Lloyd iterations across all clusterings.
	KMeansIterations int `json:"kmeans_iterations,omitempty"`
	// Incumbents counts MILP incumbent improvements observed.
	Incumbents int `json:"incumbents,omitempty"`
	// BestObjective is the objective of the latest incumbent.
	BestObjective float64 `json:"best_objective,omitempty"`
	// Gap is the latest incumbent's optimality gap (-1 when unknown).
	Gap float64 `json:"gap,omitempty"`
	// Events counts every progress event received.
	Events int `json:"events,omitempty"`
}

// noteProgress is the job's obs.SinkFunc: it folds the event stream into
// the JobProgress snapshot surfaced by the status endpoints.
func (j *Job) noteProgress(e obs.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress.Events++
	switch {
	case e.Source == "flow" && e.Kind == "stage":
		j.progress.Stage = e.Stage
	case e.Source == "kmeans" && e.Kind == "iteration":
		j.progress.KMeansIterations++
	case e.Source == "milp" && e.Kind == "incumbent":
		j.progress.Incumbents++
		j.progress.BestObjective = e.Objective
		j.progress.Gap = e.Gap
	}
}

// JobView is the wire representation of a job.
type JobView struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	Testcase  string     `json:"testcase"`
	Flows     []int      `json:"flows"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	// Attempts counts executions; >1 means transient failures were retried.
	Attempts int `json:"attempts,omitempty"`
	// Degraded marks a job whose solve settled below the proven ILP
	// optimum (anytime incumbent or greedy fallback).
	Degraded bool `json:"degraded,omitempty"`
	// Replayed marks a job recovered from the journal after a crash.
	Replayed bool `json:"replayed,omitempty"`
	// Reroutes counts lane moves after dispatch failures or lease expiry.
	Reroutes int `json:"reroutes,omitempty"`
	// CacheHit marks a job served entirely from the solve cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Backend names the scheduler backend the job was routed to; empty for
	// cache hits, which never reach a backend.
	Backend string `json:"backend,omitempty"`
	// Progress is the live solver-progress snapshot; present once the job
	// has produced at least one observability event.
	Progress *JobProgress `json:"progress,omitempty"`
	// TraceID is the job's distributed trace ID — the key that joins this
	// job's logs, metrics exemplars and GET /v1/jobs/{id}/trace timeline.
	TraceID string `json:"trace_id,omitempty"`
}

// View renders the job for the wire.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		State:     j.state,
		Testcase:  j.spec.Name(),
		Submitted: j.submitted,
	}
	for _, id := range j.flows {
		v.Flows = append(v.Flows, int(id))
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	v.Attempts = j.attempts
	v.Degraded = j.degraded
	v.Replayed = j.replayed
	v.Reroutes = j.reroutes
	v.CacheHit = j.cacheHit
	v.Backend = j.backend
	v.TraceID = j.trace.TraceID
	if j.progress.Events > 0 {
		p := j.progress
		v.Progress = &p
	}
	return v
}

// noteAttempt counts one execution of the job's flows.
func (j *Job) noteAttempt() {
	j.mu.Lock()
	j.attempts++
	j.mu.Unlock()
}

// noteDegraded marks the job as having settled below the ILP optimum.
func (j *Job) noteDegraded() {
	j.mu.Lock()
	j.degraded = true
	j.mu.Unlock()
}

// Snapshot returns the job's state and terminal error. Successful results
// live in the result store, not on the job.
func (j *Job) Snapshot() (State, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err
}

// Request returns a copy of the job's request (immutable after submit).
func (j *Job) Request() JobRequest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.req
}

// requestCancel transitions the job toward Canceled. A queued job is
// finished immediately (the worker will skip it); a running job has its
// context canceled and finishes when the flow unwinds. Returns false when
// the job is already terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = errs.ErrCanceled
		j.finished = time.Now()
		return true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true
	default:
		return false
	}
}

// claim takes a queued job for a worker, attaching its cancel handle.
// ok is false if the job was canceled while waiting in the queue — the
// work-claiming handshake that makes cancel-while-queued race-free. The
// returned epoch identifies this attempt: after a re-route the job is
// claimed again under a higher epoch, and only the holder of the current
// epoch may terminalize the job (see beginFinish).
func (j *Job) claim(cancel context.CancelFunc) (epoch int64, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return 0, false
	}
	j.state = StateRunning
	if j.started.IsZero() {
		j.started = time.Now()
	}
	j.cancel = cancel
	j.epoch++
	return j.epoch, true
}

// firstClaim reports whether epoch is the job's first claim — the one that
// should journal EventStarted and bump the inflight accounting. Re-claims
// after a re-route must not, or the started/finished counters drift.
func firstClaim(epoch int64) bool { return epoch == 1 }

// beginFinish claims the exclusive right to terminalize the job on behalf
// of attempt epoch. It succeeds only when the job is still Running, the
// epoch is current (the attempt was not re-routed away), and no other
// finisher got here first; the finishing latch then blocks the lease
// monitor from requeueing while the outcome is committed to the result
// store. The winner must follow up with finish(). A false return means the
// attempt's result must be discarded — some newer epoch owns the job.
func (j *Job) beginFinish(epoch int64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.epoch != epoch || j.finishing {
		return false
	}
	j.finishing = true
	return true
}

// requeue moves a Running job back to Queued for re-dispatch on another
// lane, invalidating attempt epoch. It fails when the epoch is stale, the
// job already entered finishing, or the re-route budget (max) is spent.
// The returned cancel handle (possibly nil) belongs to the abandoned
// attempt; the caller cancels it *after* enqueueing so the old worker
// unwinds without ever having owned a committable epoch.
func (j *Job) requeue(epoch int64, max int) (cancel context.CancelFunc, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.epoch != epoch || j.finishing {
		return nil, false
	}
	if j.reroutes >= max {
		return nil, false
	}
	j.reroutes++
	j.state = StateQueued
	j.lease = time.Time{}
	cancel = j.cancel
	j.cancel = nil
	return cancel, true
}

// setLease (re)arms the lease deadline for the attempt identified by epoch.
// A stale epoch is ignored: the renewal loop of an abandoned attempt must
// not extend the lease the new owner runs under.
func (j *Job) setLease(epoch int64, deadline time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.epoch != epoch {
		return false
	}
	j.lease = deadline
	return true
}

// renewLease extends the lease, but only while it is still live. A lapsed
// lease is gone — the monitor is entitled to re-route the job at any
// moment — so a renewal landing after expiry must not resurrect it: a
// partition that heals while the old attempt's response path is still dead
// would otherwise keep the job leased (and the attempt hung) forever, with
// every ping extending a lease the worker can no longer honor. Renewal has
// to complete before the deadline, like any lease protocol.
func (j *Job) renewLease(epoch int64, now, deadline time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.epoch != epoch || j.lease.IsZero() || now.After(j.lease) {
		return false
	}
	j.lease = deadline
	return true
}

// leaseExpired reports whether the job holds a lease that lapsed before
// now, returning the epoch to invalidate. The finishing latch masks
// expiry: a job whose result is mid-commit is no longer re-routable.
func (j *Job) leaseExpired(now time.Time) (epoch int64, expired bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.finishing || j.lease.IsZero() || now.Before(j.lease) {
		return 0, false
	}
	return j.epoch, true
}

// backendName returns the lane the job is currently routed to.
func (j *Job) backendName() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.backend
}

// setBackendName records the lane the job moved to on a re-route.
func (j *Job) setBackendName(name string) {
	j.mu.Lock()
	j.backend = name
	j.mu.Unlock()
}

// condemn plants the error the lease monitor wants the job to fail with
// and cancels the attempt's context — but only while attempt epoch still
// owns the job. The running attempt's unwind consumes the cause via
// takeFailCause, so an "out of re-routes" job reports backend
// unavailability rather than the cancellation used to stop it. The epoch
// guard matters: a sweep that lost the re-route race (the attempt's own
// unwind, or another sweep, moved the job on between leaseExpired and
// here) must not touch the job — an unguarded cancel could land on the
// freshly re-queued job and kill it with no terminal journal event.
func (j *Job) condemn(epoch int64, cause error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.epoch != epoch || j.finishing {
		return
	}
	j.failCause = cause
	if j.cancel != nil {
		j.cancel()
	}
}

// takeFailCause returns and clears the imposed failure cause, if any.
func (j *Job) takeFailCause() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.failCause
	j.failCause = nil
	return err
}

// finish records the outcome. A cancellation error lands in StateCanceled,
// any other error in StateFailed.
func (j *Job) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.finished = time.Now()
	j.err = err
	j.lease = time.Time{}
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, errs.ErrCanceled):
		j.state = StateCanceled
	default:
		j.state = StateFailed
	}
}

// completeFromCache finishes a just-created job as a cache hit.
func (j *Job) completeFromCache() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.cacheHit = true
	j.finished = time.Now()
}
