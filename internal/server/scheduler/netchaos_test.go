package scheduler

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mthplace/internal/fault"
	"mthplace/internal/journal"
)

// netChaosSchedules is the seeded schedule count of the network chaos
// suite. Every schedule is a pure function of its seed, so a failing seed
// replays exactly with -run 'TestNetworkChaos/seed=N'.
const netChaosSchedules = 250

// netChaosDisruption is one thing that goes wrong during a schedule.
type netChaosDisruption int

const (
	disruptNone        netChaosDisruption = iota
	disruptKillWorker                     // a worker dies mid-load and stays dead
	disruptPartition                      // a worker hangs (accepts, never answers), heals later
	disruptRefuseFirst                    // the first k dispatches are refused at the network
	disruptCorruptWire                    // the first k responses come back unparseable
	disruptWorkerBusy                     // a worker 503s its first k dispatches
	disruptCount
)

func (d netChaosDisruption) String() string {
	return [...]string{"none", "kill", "partition", "refuse", "corrupt", "busy"}[d]
}

// TestNetworkChaos is the fabric acceptance suite: 250 seeded schedules,
// each submitting a burst of jobs to a coordinator over two stub workers
// while one disruption plays out. Whatever happens — a worker killed
// mid-job, a partition that heals, refused connections, corrupted or
// backpressured responses — the invariants must hold:
//
//   - no job lost: every submission reaches a terminal state;
//   - exactly-once: the journal shows exactly one submitted and exactly
//     one terminal event per job, and every completed job's metrics are
//     byte-identical to an undisturbed run (the stub result is a pure
//     function of the request, so a double execution with divergent
//     outcomes cannot hide);
//   - with a live worker remaining, every job actually completes.
func TestNetworkChaos(t *testing.T) {
	n := netChaosSchedules
	if testing.Short() {
		n = 40
	}
	for seed := 0; seed < n; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runNetChaosSchedule(t, int64(seed))
		})
	}
}

func runNetChaosSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	w0, w1 := newStubWorker(t), newStubWorker(t)
	workers := []*stubWorker{w0, w1}
	dir := t.TempDir()

	opt := remoteOptions(w0.URL(), w1.URL())
	opt.JournalDir = dir
	opt.LeaseDuration = 50 * time.Millisecond
	opt.MaxRetries = 2

	disruption := netChaosDisruption(rng.Intn(int(disruptCount)))
	victim := workers[rng.Intn(len(workers))]
	k := 1 + rng.Intn(3)

	// Wire-level fault plans are installed before the scheduler starts so
	// the hit counters include every dispatch from the first job on.
	switch disruption {
	case disruptRefuseFirst:
		rules := make([]fault.Rule, k)
		for i := range rules {
			rules[i] = fault.Rule{Point: FaultDispatch, Kind: fault.KindRefuse, Hit: i + 1}
		}
		t.Cleanup(fault.Install(fault.NewPlan(rules...)))
	case disruptCorruptWire:
		rules := make([]fault.Rule, k)
		for i := range rules {
			rules[i] = fault.Rule{Point: FaultDispatch, Kind: fault.KindCorrupt, Hit: i + 1}
		}
		t.Cleanup(fault.Install(fault.NewPlan(rules...)))
	case disruptWorkerBusy:
		victim.setBusy(k)
	}

	s := newSched(t, opt)

	const jobs = 10
	reqs := make([]JobRequest, jobs)
	ids := make(map[string]string, jobs) // job ID -> expected terminal event
	handles := make([]*Job, 0, jobs)
	for i := range reqs {
		reqs[i] = JobRequest{
			Testcase: "aes_300",
			Scale:    0.02,
			Seed:     int64(1 + rng.Intn(1000)),
			Solver:   "greedy",
		}
	}

	// The mid-load disruptions arm after a few jobs are in flight.
	switch disruption {
	case disruptKillWorker:
		go func() {
			fault.Sleep(t.Context(), time.Duration(2+rng.Intn(10))*time.Millisecond)
			victim.setMode(modeDead)
		}()
	case disruptPartition:
		heal := time.Duration(60+rng.Intn(80)) * time.Millisecond
		victim.setMode(modePartition)
		go func() {
			fault.Sleep(t.Context(), heal)
			victim.setMode(modeOK)
		}()
	}

	for i := range reqs {
		jb, err := s.Submit(reqs[i])
		if err != nil {
			// Backpressure on submit is legal under chaos; a rejected job is
			// not an accepted job and owes no terminal event.
			continue
		}
		handles = append(handles, jb)
		ids[jb.ID] = journal.EventDone
	}
	if len(handles) == 0 {
		t.Fatal("chaos schedule rejected every submission")
	}

	deadline := time.Now().Add(30 * time.Second)
	for _, jb := range handles {
		for {
			st, err := jb.Snapshot()
			if st.Terminal() {
				if st != StateDone {
					t.Errorf("disruption=%s: job %s finished %q (%v), want done (one worker stayed live)",
						disruption, jb.ID, st, err)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("disruption=%s: job %s lost (stuck in %q)", disruption, jb.ID, st)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Completed jobs must carry the exact metrics an undisturbed run would
	// have produced, whichever lane (or how many attempts) served them.
	for _, jb := range handles {
		st, _ := jb.Snapshot()
		if st != StateDone {
			continue
		}
		out, ok := s.Outcome(jb.ID)
		if !ok {
			t.Errorf("disruption=%s: done job %s stored no outcome", disruption, jb.ID)
			continue
		}
		want := stubResult(jb.Request())
		for id, m := range want.Metrics {
			if out.Metrics[id] != m {
				t.Errorf("disruption=%s: job %s flow %v metrics diverge from the undisturbed run:\n got %+v\nwant %+v",
					disruption, jb.ID, id, out.Metrics[id], m)
			}
		}
	}

	// Drain the fabric before auditing: Snapshot() can observe a job
	// terminal a beat before its journal append lands, and zombie attempts
	// (epoch invalidated by a re-route) may still be unwinding. Shutdown
	// joins every worker goroutine, so afterwards the journal is complete.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	auditJournal(t, dir, ids)
	for id := range ids {
		if _, ok := s.Outcome(id); !ok {
			t.Errorf("disruption=%s: job %s has no stored outcome", disruption, id)
		}
	}

	// Trace continuity: whatever the disruption did — kills, reroutes,
	// partitions, zombie attempts — every completed job's merged timeline
	// must have exactly one root span, no orphaned parents, and one reroute
	// instant per counted reroute.
	rerouteInstants := 0
	for id := range ids {
		recs := s.TraceRecords(id)
		tt := topo(t, recs)
		if len(tt.roots) != 1 {
			t.Errorf("disruption=%s: job %s trace has %d root spans, want 1", disruption, id, len(tt.roots))
		}
		if len(tt.orphans) != 0 {
			t.Errorf("disruption=%s: job %s trace has orphan spans: %+v", disruption, id, tt.orphans)
		}
		trace := ""
		for _, r := range recs {
			if trace == "" {
				trace = r.TraceID
			}
			if r.TraceID != trace {
				t.Errorf("disruption=%s: job %s mixes traces %q and %q", disruption, id, trace, r.TraceID)
			}
			if r.Name == "reroute" && r.Kind == "instant" {
				rerouteInstants++
			}
		}
	}
	if got := s.Stats().Reroutes; int64(rerouteInstants) != got {
		t.Errorf("disruption=%s: %d reroute instants in traces vs %d counted reroutes",
			disruption, rerouteInstants, got)
	}
}
