// Remote execution lane: a Backend that dispatches jobs over HTTP to a
// peer mthserved process running in -worker mode. The lane looks exactly
// like Local to the scheduler — a bounded queue drained by a fixed set of
// dispatcher goroutines — but each dispatcher ships the job's request to
// the worker and waits for the WireResult instead of running flows itself.
//
// Failure handling lives in three places with sharp boundaries:
//
//   - transport-level trouble (connection refused, truncated or corrupt
//     response, worker 503) is classed errs.ErrTransient + ErrUnavailable,
//     so the scheduler's existing backoff retries it a few times and then
//     re-routes the job through the ring (runJobOn);
//   - job-level failures reported by a healthy worker (infeasible, panic,
//     timeout) are rebuilt as the same typed errors a local run would have
//     produced, and never count against the lane's health;
//   - lane-level health is a circuit breaker fed by dispatch outcomes and
//     a heartbeat prober, so a dead worker is ejected from routing within
//     a bounded window and readmitted only after a probe succeeds.
package scheduler

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/fault"
	"mthplace/internal/obs"
)

// Fault-point names at the remote-dispatch network boundary.
const (
	// FaultDispatch governs Remote.Execute: refuse fails the dispatch
	// before any bytes are sent, drop truncates the response mid-body,
	// corrupt mangles the response bytes, error/latency/panic behave as at
	// any other point.
	FaultDispatch = "remote.dispatch"
	// FaultHeartbeat governs the prober and lease-renewal pings; any armed
	// kind fails the probe.
	FaultHeartbeat = "remote.heartbeat"
)

// Circuit-breaker states, exported through /stats and the
// backend_circuit_state metric (by numeric value).
const (
	CircuitClosed   = "closed"
	CircuitOpen     = "open"
	CircuitHalfOpen = "half-open"
)

// breaker is a per-lane circuit breaker. Dispatch failures accumulate; at
// threshold the circuit opens and the lane reports itself dead, which both
// short-circuits Execute and removes the lane from re-route candidacy.
// After cooldown the next allow() admits a single half-open trial; its
// outcome closes or re-opens the circuit. The prober bypasses allow — it
// is the healer: a probe success closes the circuit outright, so a
// recovered worker is readmitted within one probe interval regardless of
// traffic.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int
	state     string
	openedAt  time.Time
	trial     bool // a half-open trial is in flight
	onState   func(string)
}

func newBreaker(threshold int, cooldown time.Duration, onState func(string)) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	b := &breaker{threshold: threshold, cooldown: cooldown, state: CircuitClosed, onState: onState}
	b.note()
	return b
}

// note reports the current state to the gauge hook; callers hold b.mu (or
// have exclusive access, as in newBreaker).
func (b *breaker) note() {
	if b.onState != nil {
		b.onState(b.state)
	}
}

// allow reports whether a dispatch may proceed, transitioning open →
// half-open once the cooldown has elapsed (admitting exactly one trial).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case CircuitClosed:
		return true
	case CircuitOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = CircuitHalfOpen
		b.trial = true
		b.note()
		return true
	default: // half-open: one trial at a time
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// success records a healthy interaction (dispatch completed, or a probe
// answered): the circuit closes and the failure count resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	changed := b.state != CircuitClosed
	b.state = CircuitClosed
	b.failures = 0
	b.trial = false
	if changed {
		b.note()
	}
}

// failure records a transport-level failure. A failed half-open trial
// re-opens immediately; in closed state the threshold applies.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.trial = false
	if b.state == CircuitHalfOpen || b.failures >= b.threshold {
		if b.state != CircuitOpen {
			b.state = CircuitOpen
			b.note()
		}
		b.openedAt = time.Now()
	}
}

// State returns the current circuit state string.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RemoteOptions tunes one remote lane.
type RemoteOptions struct {
	// Addr is the worker's base URL ("http://host:port").
	Addr string
	// Dispatchers is the lane's concurrent-dispatch complement (>= 1).
	Dispatchers int
	// Depth bounds the lane's queue.
	Depth int
	// ProbeInterval is the heartbeat cadence (0 disables the prober —
	// tests that drive health by hand).
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit.
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay.
	BreakerCooldown time.Duration
	// Client overrides the HTTP client (tests); nil uses a default with no
	// global timeout — per-dispatch lifetimes come from the job context.
	Client *http.Client
	// OnCircuit observes circuit-state changes; OnRTT observes successful
	// heartbeat round-trip times; OnDispatchFailure counts transport-level
	// dispatch failures. All optional.
	OnCircuit         func(string)
	OnRTT             func(time.Duration)
	OnDispatchFailure func()
	// OnSpans receives each dispatched job's worker-side span records,
	// already skew-corrected and lane-labelled. Called from dispatcher
	// goroutines (WireResult piggyback) and the prober (stash drain), so the
	// sink must be concurrency-safe. Optional.
	OnSpans func(job string, spans []obs.SpanRecord)
}

// Remote is the HTTP-dispatch Backend.
type Remote struct {
	name   string
	opt    RemoteOptions
	client *http.Client
	queue  chan *Job
	wg     sync.WaitGroup // dispatchers + prober
	br     *breaker

	ctx    context.Context // prober lifetime; canceled by Close
	cancel context.CancelFunc

	rttNanos      atomic.Int64 // last successful heartbeat RTT
	dispatchFails atomic.Int64
	clockOffUS    atomic.Int64 // worker clock minus coordinator clock, micros
}

// NewRemote builds a remote lane. Call Start to begin dispatching.
func NewRemote(name string, opt RemoteOptions) *Remote {
	if opt.Dispatchers < 1 {
		opt.Dispatchers = 1
	}
	if opt.Depth < 1 {
		opt.Depth = 1
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Remote{
		name:   name,
		opt:    opt,
		client: client,
		queue:  make(chan *Job, opt.Depth),
		br:     newBreaker(opt.BreakerThreshold, opt.BreakerCooldown, opt.OnCircuit),
		ctx:    ctx,
		cancel: cancel,
	}
}

func (r *Remote) Name() string  { return r.name }
func (r *Remote) Addr() string  { return r.opt.Addr }
func (r *Remote) Depth() int    { return len(r.queue) }
func (r *Remote) Capacity() int { return cap(r.queue) }
func (r *Remote) Workers() int  { return r.opt.Dispatchers }

func (r *Remote) Enqueue(jb *Job) error {
	select {
	case r.queue <- jb:
		return nil
	default:
		return ErrQueueFull
	}
}

func (r *Remote) Start(run func(*Job)) {
	r.wg.Add(r.opt.Dispatchers)
	for i := 0; i < r.opt.Dispatchers; i++ {
		go func() {
			defer r.wg.Done()
			for jb := range r.queue {
				run(jb)
			}
		}()
	}
	if r.opt.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
}

// Close stops the prober and intake; queued jobs drain through the
// dispatchers first (the scheduler cancels them during shutdown, so the
// drain is fast).
func (r *Remote) Close() {
	r.cancel()
	close(r.queue)
}

// Wait blocks until the dispatchers and prober have exited, then releases
// idle keep-alive connections so a shut-down coordinator holds no sockets
// open to its workers.
func (r *Remote) Wait() {
	r.wg.Wait()
	r.client.CloseIdleConnections()
}

// Healthy reports whether routing may consider this lane: any circuit
// state but open. Half-open counts as healthy so the trial dispatch that
// would close the circuit can actually happen.
func (r *Remote) Healthy() bool { return r.br.State() != CircuitOpen }

// CircuitState returns the lane's circuit state for /stats.
func (r *Remote) CircuitState() string { return r.br.State() }

// LastRTT returns the most recent successful heartbeat round trip (0
// before the first probe).
func (r *Remote) LastRTT() time.Duration { return time.Duration(r.rttNanos.Load()) }

// DispatchFailures returns the lane's transport-level failure count.
func (r *Remote) DispatchFailures() int64 { return r.dispatchFails.Load() }

// ClockOffset returns the estimated worker-minus-coordinator clock skew,
// refreshed by each successful ping (0 before the first, or when the worker
// predates the time header).
func (r *Remote) ClockOffset() time.Duration {
	return time.Duration(r.clockOffUS.Load()) * time.Microsecond
}

// probeLoop is the heartbeat: ping the worker every interval, feeding the
// breaker. Success closes the circuit (readmission); failure counts toward
// opening it even with no traffic, so a silently dead worker is ejected
// within threshold × interval.
func (r *Remote) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			if err := r.Ping(r.ctx); err != nil {
				r.br.failure()
			} else {
				r.br.success()
				// A live worker may hold spans for jobs whose WireResult
				// never reached us (leased-then-rerouted); collect them on
				// the heartbeat so those timelines still merge.
				r.drainSpans(r.ctx)
			}
		}
	}
}

// Ping performs one heartbeat round trip, recording its RTT on success.
func (r *Remote) Ping(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if rule := fault.InjectNet(ctx, FaultHeartbeat); rule != nil {
		return errs.Transient("fault: injected %s at %s", rule.Kind, FaultHeartbeat)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opt.Addr+WorkerPingPath, nil)
	if err != nil {
		return err
	}
	t0 := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("worker %s ping: status %d", r.name, resp.StatusCode)
	}
	rtt := time.Since(t0)
	r.rttNanos.Store(int64(rtt))
	if r.opt.OnRTT != nil {
		r.opt.OnRTT(rtt)
	}
	if h := resp.Header.Get(WorkerTimeHeader); h != "" {
		if workerUS, err := strconv.ParseInt(h, 10, 64); err == nil {
			// The worker stamped its clock somewhere inside our round trip;
			// assume the midpoint, so offset ≈ worker − (t0 + rtt/2). Good to
			// within rtt/2, which is far below span durations on any fabric
			// worth tracing.
			r.clockOffUS.Store(workerUS - (t0.UnixMicro() + rtt.Microseconds()/2))
		}
	}
	return nil
}

// drainSpans collects the worker's stashed span batches (jobs whose
// WireResult never made it back) and hands them to the OnSpans sink.
// Best-effort: a failed drain leaves the stash on the worker for the next
// heartbeat.
func (r *Remote) drainSpans(ctx context.Context) {
	if r.opt.OnSpans == nil {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opt.Addr+WorkerSpansPath, nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return
	}
	var batches []WireSpanBatch
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&batches); err != nil {
		return
	}
	for _, b := range batches {
		r.deliverSpans(b.Job, b.Spans)
	}
}

// deliverSpans skew-corrects and lane-labels one job's worker records, then
// hands them to the OnSpans sink. Worker timestamps are the worker's wall
// clock; subtracting the heartbeat-estimated offset places them on the
// coordinator's timeline so the merged trace doesn't show a solver starting
// before its dispatch.
func (r *Remote) deliverSpans(job string, spans []obs.SpanRecord) {
	if r.opt.OnSpans == nil || len(spans) == 0 {
		return
	}
	off := r.clockOffUS.Load()
	for i := range spans {
		spans[i].StartUS -= off
		spans[i].Proc = r.name
	}
	r.opt.OnSpans(job, spans)
}

// unavailable wraps a dispatch failure so both classifications hold:
// errs.ErrTransient makes the scheduler's backoff retry it on this lane,
// and errs.ErrUnavailable makes the post-retry path re-route instead of
// failing the job (and maps to 503 if the job does fail).
func (r *Remote) unavailable(format string, args ...any) error {
	return fmt.Errorf("dispatch to %s: %s: %w (%w)", r.name,
		fmt.Sprintf(format, args...), errs.ErrUnavailable, errs.Transient("remote transport"))
}

// Execute dispatches one job to the worker and decodes its result. The
// returned error is either transport-classed (ErrUnavailable+ErrTransient;
// the lane is suspect) or the job's own typed failure rebuilt from the
// wire (the lane is fine). ctx cancellation propagates to the worker by
// aborting the in-flight request.
func (r *Remote) Execute(ctx context.Context, jb *Job) (*ExecResult, error) {
	if !r.br.allow() {
		// No ErrTransient here: retrying an open circuit on the same lane
		// is pointless, the caller should go straight to re-routing.
		return nil, fmt.Errorf("dispatch to %s: circuit open: %w", r.name, errs.ErrUnavailable)
	}
	res, err := r.dispatch(ctx, jb)
	if err != nil && ctx.Err() == nil {
		r.dispatchFails.Add(1)
		if r.opt.OnDispatchFailure != nil {
			r.opt.OnDispatchFailure()
		}
		r.br.failure()
		return nil, err
	}
	if err != nil {
		// The job's context ended mid-dispatch: not the lane's fault.
		return nil, errs.FromContext(ctx)
	}
	r.br.success()
	// Piggybacked spans are part of the job's story whether the attempt
	// succeeded or the worker reported a typed failure.
	r.deliverSpans(jb.ID, res.Spans)
	if res.Error != "" {
		return nil, errorFromClass(res.Class, res.Error)
	}
	return &ExecResult{Metrics: res.Metrics, Placements: res.Placements}, nil
}

// dispatch performs the HTTP round trip, simulating any armed network
// fault at the FaultDispatch point. Errors are transport-classed.
func (r *Remote) dispatch(ctx context.Context, jb *Job) (*WireResult, error) {
	rule := fault.InjectNet(ctx, FaultDispatch)
	if rule != nil {
		switch rule.Kind {
		case fault.KindRefuse, fault.KindError:
			// Fail before any bytes are sent: the worker never sees the job.
			return nil, r.unavailable("connection refused (injected)")
		}
	}
	// The dispatch span's context rides the wire so the worker's spans
	// parent under it and share the job's TraceID.
	body, err := json.Marshal(WireJob{
		ID:          jb.ID,
		Req:         jb.Request(),
		Traceparent: obs.SpanContextFrom(ctx).Traceparent(),
	})
	if err != nil {
		return nil, fmt.Errorf("dispatch to %s: encode: %w", r.name, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.opt.Addr+WorkerExecutePath, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("dispatch to %s: %w", r.name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, r.unavailable("%v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, r.unavailable("read response: %v", err)
	}
	if rule != nil {
		switch rule.Kind {
		case fault.KindDrop:
			// The worker ran the job; its response died mid-body.
			raw = raw[:len(raw)/2]
		case fault.KindCorrupt:
			// Flip the leading byte: a JSON body that no longer starts with
			// '{' is guaranteed unparseable, which is the contract of the
			// corrupt kind (a mid-string bit flip could survive decoding).
			if len(raw) > 0 {
				raw[0] ^= 0xff
			}
		}
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusServiceUnavailable:
		return nil, r.unavailable("worker at capacity (503)")
	default:
		return nil, r.unavailable("status %d: %s", resp.StatusCode, truncate(raw, 200))
	}
	var res WireResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, r.unavailable("malformed response: %v", err)
	}
	return &res, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
