// Lease-based ownership of remotely dispatched jobs. A job handed to a
// Remote lane carries a deadline-bound lease, journaled so the audit trail
// shows who owned what when. While the attempt is in flight a renewal loop
// pings the worker and extends the lease — a busy-but-alive worker keeps
// its job indefinitely — so only a dead, hung or partitioned worker lets
// the lease lapse. The monitor sweeps running jobs, and an expired lease
// re-routes the job through the live ring exactly like a dispatch failure
// would, invalidating the old attempt's epoch first so a zombie completion
// arriving later is dropped by beginFinish (the exactly-once guard).
package scheduler

import (
	"context"
	"fmt"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/journal"
)

// startLeaseLoop launches the monitor goroutine; only called when the
// scheduler has remote lanes, so pure-local configurations pay nothing.
func (s *Scheduler) startLeaseLoop() {
	s.leaseStop = make(chan struct{})
	s.leaseWG.Add(1)
	go func() {
		defer s.leaseWG.Done()
		t := time.NewTicker(s.opt.LeaseDuration / 4)
		defer t.Stop()
		for {
			select {
			case <-s.leaseStop:
				return
			case <-t.C:
				s.sweepLeases(time.Now())
			}
		}
	}()
}

// stopLeaseLoop stops the monitor (idempotent under Shutdown's single-shot
// accepting gate) and waits for the sweep in flight to finish.
func (s *Scheduler) stopLeaseLoop() {
	if s.leaseStop == nil {
		return
	}
	close(s.leaseStop)
	s.leaseWG.Wait()
}

// sweepLeases finds running jobs whose lease lapsed before now and
// re-routes them. A job out of re-route budget (or with nowhere to go) is
// instead failed through its running attempt: the monitor plants the
// terminal cause and cancels the attempt's context, and the attempt's
// unwind consumes the cause so the job reports backend unavailability, not
// a cancellation it never asked for.
func (s *Scheduler) sweepLeases(now time.Time) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, jb := range jobs {
		epoch, expired := jb.leaseExpired(now)
		if !expired {
			continue
		}
		s.stats.leaseExpired()
		s.mLeaseExp.Inc()
		s.journal(jb, journal.EventLeaseExpired, nil)
		s.traceInstant(jb, "lease_expired", map[string]any{"epoch": epoch, "backend": jb.backendName()})
		s.log.Warn("job lease expired", "job", jb.ID, "trace_id", jb.TraceID(), "epoch", epoch)
		if s.reroute(jb, epoch) {
			continue
		}
		jb.condemn(epoch, fmt.Errorf("lease expired and no live backend would take the job: %w", errs.ErrUnavailable))
	}
}

// journalLeased records a lease grant with its owner and deadline.
func (s *Scheduler) journalLeased(jb *Job, backend string, deadline time.Time) {
	if s.jrnl == nil {
		return
	}
	d := deadline
	_ = s.jrnl.Append(journal.Entry{Seq: jb.seqn, Job: jb.ID, Event: journal.EventLeased, Backend: backend, Deadline: &d})
}

// reroute moves a running job whose attempt (epoch) failed or timed out
// onto another live lane, falling back to a fresh attempt on its own lane
// when that lane is healthy and no other qualifies. It returns false —
// leaving the job with its current attempt — when intake is closed, the
// re-route budget is spent, the attempt already began finishing, or no
// live lane (its own included) has queue room.
// The old attempt's context is canceled only after the job is safely
// enqueued elsewhere; by then the old epoch is stale, so whatever that
// attempt still produces is discarded by beginFinish.
func (s *Scheduler) reroute(jb *Job, epoch int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.accepting {
		return false // shutdown: lanes are closing, nothing to re-route onto
	}
	from := s.laneIndex(jb.backendName())
	hasRoom := func(i int) bool {
		return s.laneHealthy(i) && s.backends[i].Depth() < s.backends[i].Capacity()
	}
	idx, ok := s.ring.pickLive(routingKey(jb.keys), from, hasRoom)
	if !ok {
		// Nowhere else to go — but a lapsed lease does not indict the lane:
		// a renewal can simply have missed its window (scheduler starvation,
		// or a healed partition whose old response path is dead). A healthy
		// current lane with queue room takes the job back as a fresh
		// attempt — the new epoch invalidates the old one and its possibly
		// hung dispatch is canceled below — rather than failing a job a
		// live worker could run.
		if from < 0 || !hasRoom(from) {
			return false
		}
		idx = from
	}
	cancel, ok := jb.requeue(epoch, s.opt.RerouteMax)
	if !ok {
		return false
	}
	fromName := jb.backendName()
	be := s.backends[idx]
	jb.setBackendName(be.Name())
	s.journalRerouted(jb, be.Name())
	s.stats.jobRerouted()
	s.mReroutes.Inc()
	s.traceInstant(jb, "reroute", map[string]any{"from": fromName, "to": be.Name(), "epoch": epoch})
	// Cannot fail: room was checked above and every Enqueue is under s.mu.
	if err := be.Enqueue(jb); err != nil {
		// Defensive: never strand a Queued job that sits in no queue.
		jb.finish(fmt.Errorf("re-route enqueue to %s: %w: %w", be.Name(), err, errs.ErrUnavailable))
		s.journal(jb, terminalEvent(jb), err)
		if jb.countFinish() {
			s.stats.jobFinished(0)
			s.mFinished.Inc()
		}
		s.traceRoot(jb)
	}
	if cancel != nil {
		cancel()
	}
	s.log.Info("job re-routed", "job", jb.ID, "trace_id", jb.TraceID(), "to", be.Name())
	return true
}

// journalRerouted records the job's new owner lane.
func (s *Scheduler) journalRerouted(jb *Job, backend string) {
	if s.jrnl == nil {
		return
	}
	_ = s.jrnl.Append(journal.Entry{Seq: jb.seqn, Job: jb.ID, Event: journal.EventRerouted, Backend: backend})
}

// laneIndex resolves a backend name to its lane index (-1 when unknown).
// Callers hold s.mu.
func (s *Scheduler) laneIndex(name string) int {
	for i, b := range s.backends {
		if b.Name() == name {
			return i
		}
	}
	return -1
}

// laneHealthy reports whether lane i may receive work: remote lanes answer
// through their circuit breaker, local lanes are always healthy.
func (s *Scheduler) laneHealthy(i int) bool {
	if rb, ok := s.backends[i].(*Remote); ok {
		return rb.Healthy()
	}
	return true
}

// startLeaseRenewal launches the per-attempt renewal loop: every third of
// the lease duration it pings the worker and, on success, pushes the lease
// deadline out. The returned stop function is deferred by the attempt; the
// loop also exits when the attempt's context ends, when the renewal races
// a re-route (renewLease rejects the stale epoch), or when the lease
// already lapsed (renewLease refuses to resurrect it — the monitor owns
// an expired lease's fate).
func (s *Scheduler) startLeaseRenewal(ctx context.Context, jb *Job, epoch int64, rb *Remote) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(s.opt.LeaseDuration / 3)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if rb.Ping(ctx) != nil {
					continue // expiry is the monitor's call, not ours
				}
				now := time.Now()
				if !jb.renewLease(epoch, now, now.Add(s.opt.LeaseDuration)) {
					return // lease lapsed or epoch stale: the job moved on
				}
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
