package scheduler

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// ErrQueueFull is returned by Backend.Enqueue when the backend's queue is at
// capacity; the transport maps it to 429.
var ErrQueueFull = errors.New("job queue full")

// Backend is one execution lane of the scheduler: a bounded queue with a
// fixed worker complement. The scheduler routes each job to exactly one
// backend by consistent-hashing its instance key, so resubmissions of the
// same instance land on the same lane (cache and data-locality affinity).
//
// The in-process Local backend is the only implementation today; the
// interface is the seam for multi-process backends later — a remote
// implementation would proxy Enqueue over the wire and report its peer's
// depth. The scheduler's only assumptions are the ones documented per
// method; everything job-lifecycle (claiming, retries, journaling) stays
// above this interface.
type Backend interface {
	// Name identifies the backend in /stats and journal records.
	Name() string
	// Enqueue hands a job to the backend, or returns ErrQueueFull. The
	// scheduler serializes all Enqueue calls under its own lock, so an
	// implementation may treat Depth/Enqueue as check-then-act.
	Enqueue(jb *Job) error
	// Depth is the number of jobs waiting (not yet claimed by a worker).
	Depth() int
	// Capacity is the queue bound Enqueue enforces.
	Capacity() int
	// Workers is the backend's concurrent-job complement.
	Workers() int
	// Start launches the workers; run is called once per dequeued job and
	// owns the job's whole lifecycle. Jobs enqueued before Start are kept.
	Start(run func(*Job))
	// Close stops intake and lets the workers drain what was queued.
	// Enqueue after Close is a programming error (the scheduler's intake
	// gate prevents it).
	Close()
	// Wait blocks until every worker has exited (Close must come first).
	Wait()
}

// Local is the in-process Backend: a buffered channel drained by a fixed
// set of goroutines.
type Local struct {
	name    string
	queue   chan *Job
	workers int
	wg      sync.WaitGroup
}

// NewLocal builds an in-process backend with the given queue bound and
// worker count (both >= 1). Call Start to begin draining.
func NewLocal(name string, workers, depth int) *Local {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	return &Local{name: name, queue: make(chan *Job, depth), workers: workers}
}

func (l *Local) Name() string  { return l.name }
func (l *Local) Depth() int    { return len(l.queue) }
func (l *Local) Capacity() int { return cap(l.queue) }
func (l *Local) Workers() int  { return l.workers }

func (l *Local) Enqueue(jb *Job) error {
	select {
	case l.queue <- jb:
		return nil
	default:
		return ErrQueueFull
	}
}

func (l *Local) Start(run func(*Job)) {
	l.wg.Add(l.workers)
	for i := 0; i < l.workers; i++ {
		go func() {
			defer l.wg.Done()
			for jb := range l.queue {
				run(jb)
			}
		}()
	}
}

func (l *Local) Close() { close(l.queue) }
func (l *Local) Wait()  { l.wg.Wait() }

// ringVnodes is the number of ring points per backend. 64 keeps the load
// spread within a few percent of uniform while the ring stays tiny.
const ringVnodes = 64

// ring consistent-hashes routing keys onto backend indices. With one
// backend everything maps to it; with more, each key deterministically owns
// a lane, and adding a backend moves only ~1/n of the keyspace — the
// property that will keep cache affinity through future elastic resizing.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int
}

func newRing(backends int) *ring {
	r := &ring{points: make([]ringPoint, 0, backends*ringVnodes)}
	for i := 0; i < backends; i++ {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("backend-%d/vnode-%d", i, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// pick returns the backend index owning key: the first ring point at or
// clockwise-after the key's hash.
func (r *ring) pick(key string) int {
	if len(r.points) == 0 {
		return 0
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].idx
}

// pickLive returns the backend index owning key among the lanes live
// reports healthy, walking clockwise from the key's home point so a dead
// lane's keyspace spills onto its ring successor (and comes back home when
// the lane is readmitted). exclude skips one lane regardless of health —
// re-routing a job away from the lane that just failed it. When no lane
// qualifies, the unfiltered owner is returned with ok=false.
func (r *ring) pickLive(key string, exclude int, live func(int) bool) (idx int, ok bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	seen := map[int]bool{}
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.idx] {
			continue
		}
		seen[p.idx] = true
		if p.idx != exclude && live(p.idx) {
			return p.idx, true
		}
	}
	return r.points[start].idx, false
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
