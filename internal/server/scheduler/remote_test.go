package scheduler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/fault"
	"mthplace/internal/flow"
	"mthplace/internal/journal"
	"mthplace/internal/obs"
)

// stubResult is the canned outcome a stub worker returns: a pure function
// of the request, so any lane (and any retry, on any lane) produces
// byte-identical metrics — which is how the chaos suite distinguishes a
// correct re-route from a double execution with divergent results.
func stubResult(req JobRequest) *ExecResult {
	_, ids, err := req.validate()
	if err != nil {
		return &ExecResult{}
	}
	out := &ExecResult{
		Metrics:    make(map[flow.ID]flow.Metrics, len(ids)),
		Placements: make(map[flow.ID]string, len(ids)),
	}
	for _, id := range ids {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%d|%g|%d", req.Testcase, req.Seed, req.Scale, id)
		out.Metrics[id] = flow.Metrics{
			Flow:      id,
			HPWL:      int64(h.Sum64() % 1_000_000_000),
			SolveRung: "ilp",
			Solver:    "stub",
		}
		out.Placements[id] = fmt.Sprintf("stub-%s-%d-%d", req.Testcase, req.Seed, id)
	}
	return out
}

// Stub worker modes.
const (
	modeOK        = "ok"        // answer normally
	modeDead      = "dead"      // 500 on everything: a crashed process
	modePartition = "partition" // execute hangs until the request dies, pings fail
)

// stubWorker is a hand-rolled worker-protocol server for coordinator tests.
// It deliberately does NOT use the worker package (which imports this one);
// it speaks the wire protocol directly and fails in controllable ways.
type stubWorker struct {
	srv *httptest.Server

	mu          sync.Mutex
	mode        string
	busyLeft    int // 503 + Retry-After for this many more executes
	corruptLeft int // unparseable body for this many more executes
	failClass   string

	execs atomic.Int64
	pings atomic.Int64
}

func newStubWorker(t *testing.T) *stubWorker {
	t.Helper()
	w := &stubWorker{mode: modeOK}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+WorkerExecutePath, w.handleExecute)
	mux.HandleFunc("GET "+WorkerPingPath, w.handlePing)
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

func (w *stubWorker) URL() string { return w.srv.URL }

func (w *stubWorker) setMode(m string) {
	w.mu.Lock()
	w.mode = m
	w.mu.Unlock()
}

func (w *stubWorker) setBusy(n int)    { w.mu.Lock(); w.busyLeft = n; w.mu.Unlock() }
func (w *stubWorker) setCorrupt(n int) { w.mu.Lock(); w.corruptLeft = n; w.mu.Unlock() }
func (w *stubWorker) setFailClass(c string) {
	w.mu.Lock()
	w.failClass = c
	w.mu.Unlock()
}

func (w *stubWorker) handlePing(rw http.ResponseWriter, _ *http.Request) {
	w.pings.Add(1)
	w.mu.Lock()
	mode := w.mode
	w.mu.Unlock()
	if mode != modeOK {
		http.Error(rw, "worker down", http.StatusInternalServerError)
		return
	}
	rw.Header().Set(WorkerTimeHeader, fmt.Sprintf("%d", time.Now().UnixMicro()))
	fmt.Fprintln(rw, "ok")
}

func (w *stubWorker) handleExecute(rw http.ResponseWriter, r *http.Request) {
	w.execs.Add(1)
	// Drain the body before anything else: Go's server only notices a
	// client abort (and cancels r.Context()) once the request body has been
	// consumed, and the partition mode below relies on that cancellation.
	var wj WireJob
	decodeErr := json.NewDecoder(r.Body).Decode(&wj)
	w.mu.Lock()
	mode, failClass := w.mode, w.failClass
	busy, corrupt := w.busyLeft > 0, w.corruptLeft > 0
	if busy {
		w.busyLeft--
	} else if corrupt {
		w.corruptLeft--
	}
	w.mu.Unlock()
	switch mode {
	case modeDead:
		http.Error(rw, "worker down", http.StatusInternalServerError)
		return
	case modePartition:
		// The job was accepted but no answer ever comes back; the handler
		// unwinds only when the coordinator abandons the request.
		<-r.Context().Done()
		return
	}
	if busy {
		rw.Header().Set("Retry-After", "1")
		http.Error(rw, "worker at capacity", http.StatusServiceUnavailable)
		return
	}
	if corrupt {
		rw.Header().Set("Content-Type", "application/json")
		_, _ = rw.Write([]byte(`{"metrics": garbage`))
		return
	}
	if decodeErr != nil {
		http.Error(rw, decodeErr.Error(), http.StatusBadRequest)
		return
	}
	var out WireResult
	if failClass != "" {
		out.Error = "stub failure"
		out.Class = failClass
	} else {
		res := stubResult(wj.Req)
		out.Metrics = res.Metrics
		out.Placements = res.Placements
	}
	// Like the real worker: a dispatch carrying trace context gets its
	// solver-stage span back, parented under the coordinator's dispatch span.
	if sc, ok := obs.ParseTraceparent(wj.Traceparent); ok {
		out.Spans = []obs.SpanRecord{{
			TraceID: sc.TraceID,
			SpanID:  obs.NewSpanID(),
			Parent:  sc.SpanID,
			Name:    "worker.solve",
			Kind:    "span",
			StartUS: time.Now().UnixMicro(),
			DurUS:   1,
		}}
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(out)
}

// remoteOptions are fast-converging fabric settings for tests: leases
// expire in tens of milliseconds, probes run every few milliseconds.
func remoteOptions(urls ...string) Options {
	return Options{
		Remotes:          urls,
		QueueDepth:       64,
		LeaseDuration:    60 * time.Millisecond,
		ProbeInterval:    4 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		RetryBase:        time.Millisecond,
		RerouteMax:       6,
	}
}

// reqForLane finds a request the ring routes to the given lane, varying the
// seed. The search is deterministic, so tests can pin which stub worker
// first owns a job.
func reqForLane(t *testing.T, s *Scheduler, lane int) JobRequest {
	t.Helper()
	for seed := int64(1); seed <= 200; seed++ {
		req := JobRequest{Testcase: "aes_300", Scale: 0.02, Seed: seed, Solver: "greedy"}
		if s.ring.pick(routingKey(s.instanceKeys(&req))) == lane {
			return req
		}
	}
	t.Fatalf("no seed in 1..200 routes to lane %d", lane)
	return JobRequest{}
}

// waitTerminal polls a job to any terminal state.
func waitTerminal(t *testing.T, jb *Job, within time.Duration) (State, error) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st, err := jb.Snapshot()
		if st.Terminal() {
			return st, err
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", jb.ID, st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBreakerTransitions(t *testing.T) {
	var states []string
	b := newBreaker(2, 30*time.Millisecond, func(s string) { states = append(states, s) })
	if !b.allow() || b.State() != CircuitClosed {
		t.Fatal("new breaker should be closed and allowing")
	}
	b.failure()
	if b.State() != CircuitClosed {
		t.Fatal("one failure below threshold should not open the circuit")
	}
	b.failure()
	if b.State() != CircuitOpen {
		t.Fatal("threshold failures should open the circuit")
	}
	if b.allow() {
		t.Fatal("open circuit inside cooldown must refuse dispatches")
	}
	time.Sleep(35 * time.Millisecond)
	if !b.allow() {
		t.Fatal("expired cooldown should admit a half-open trial")
	}
	if b.State() != CircuitHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if b.allow() {
		t.Fatal("half-open admits exactly one trial at a time")
	}
	b.failure()
	if b.State() != CircuitOpen {
		t.Fatal("failed trial should re-open the circuit")
	}
	time.Sleep(35 * time.Millisecond)
	if !b.allow() {
		t.Fatal("second cooldown should admit another trial")
	}
	b.success()
	if b.State() != CircuitClosed || !b.allow() {
		t.Fatal("successful trial should close the circuit")
	}
	want := []string{CircuitClosed, CircuitOpen, CircuitHalfOpen, CircuitOpen, CircuitHalfOpen, CircuitClosed}
	if len(states) != len(want) {
		t.Fatalf("state transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state transitions = %v, want %v", states, want)
		}
	}
}

func TestErrorClassRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{errs.FromPanic("boom", "job"), ClassPanic},
		{errs.Infeasible("no fit"), ClassInfeasible},
		{fmt.Errorf("late: %w", errs.ErrTimeout), ClassTimeout},
		{fmt.Errorf("stop: %w", errs.ErrCanceled), ClassCanceled},
		{errs.Transient("flaky"), ClassTransient},
		{errors.New("plain"), ClassError},
	}
	sentinels := map[string]error{
		ClassPanic:      errs.ErrPanic,
		ClassInfeasible: errs.ErrInfeasible,
		ClassTimeout:    errs.ErrTimeout,
		ClassCanceled:   errs.ErrCanceled,
		ClassTransient:  errs.ErrTransient,
	}
	for _, c := range cases {
		class := ErrorClass(c.err)
		if class != c.want {
			t.Errorf("ErrorClass(%v) = %q, want %q", c.err, class, c.want)
		}
		rebuilt := errorFromClass(class, c.err.Error())
		if want, ok := sentinels[c.want]; ok && !errors.Is(rebuilt, want) {
			t.Errorf("errorFromClass(%q) lost the %q class: %v", class, c.want, rebuilt)
		}
	}
	// A panic that carried a transient payload must still class as a panic,
	// or the coordinator would retry a bug.
	mixed := fmt.Errorf("%w: %w", errs.ErrPanic, errs.ErrTransient)
	if got := ErrorClass(mixed); got != ClassPanic {
		t.Errorf("panic+transient classed %q, want %q", got, ClassPanic)
	}
	if errorFromClass("", "") != nil {
		t.Error("empty class should rebuild to nil")
	}
}

// TestRemoteExecuteEndToEnd: a coordinator with no local lanes dispatches
// over the wire, stores the worker's result, and surfaces the remote lane's
// health in Stats.
func TestRemoteExecuteEndToEnd(t *testing.T) {
	w := newStubWorker(t)
	s := newSched(t, remoteOptions(w.URL()))

	req := JobRequest{Testcase: "aes_300", Scale: 0.02, Seed: 7, Solver: "greedy"}
	jb, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, err := waitTerminal(t, jb, 10*time.Second); st != StateDone {
		t.Fatalf("job finished %q (%v), want done", st, err)
	}
	out, ok := s.Outcome(jb.ID)
	if !ok {
		t.Fatal("no outcome stored for remotely executed job")
	}
	want := stubResult(req)
	for id, m := range want.Metrics {
		if out.Metrics[id] != m {
			t.Errorf("flow %v metrics = %+v, want %+v", id, out.Metrics[id], m)
		}
		if out.Placements[id] != want.Placements[id] {
			t.Errorf("flow %v placement = %q, want %q", id, out.Placements[id], want.Placements[id])
		}
	}
	if v := jb.View(); v.Backend != "remote-0" || v.Reroutes != 0 {
		t.Errorf("view backend=%q reroutes=%d, want remote-0 / 0", v.Backend, v.Reroutes)
	}
	snap := s.Stats()
	if len(snap.Backends) != 1 {
		t.Fatalf("stats lists %d backends, want 1", len(snap.Backends))
	}
	bs := snap.Backends[0]
	if bs.Addr != w.URL() || bs.Circuit != CircuitClosed {
		t.Errorf("backend stat = %+v, want addr %s circuit closed", bs, w.URL())
	}
}

// TestRemoteJobFailureKeepsLaneHealthy: a typed failure reported by a
// healthy worker is the job's problem, not the lane's — the error class
// survives the wire and the circuit stays closed.
func TestRemoteJobFailureKeepsLaneHealthy(t *testing.T) {
	w := newStubWorker(t)
	w.setFailClass(ClassInfeasible)
	s := newSched(t, remoteOptions(w.URL()))

	jb, err := s.Submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Solver: "greedy"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, jerr := waitTerminal(t, jb, 10*time.Second)
	if st != StateFailed || !errors.Is(jerr, errs.ErrInfeasible) {
		t.Fatalf("job finished %q (%v), want failed with ErrInfeasible", st, jerr)
	}
	snap := s.Stats()
	if snap.Backends[0].Circuit != CircuitClosed {
		t.Errorf("circuit = %s after a job-level failure, want closed", snap.Backends[0].Circuit)
	}
	if snap.Backends[0].DispatchFailures != 0 {
		t.Errorf("dispatch failures = %d after a job-level failure, want 0", snap.Backends[0].DispatchFailures)
	}
	if snap.Reroutes != 0 {
		t.Errorf("reroutes = %d, want 0", snap.Reroutes)
	}
}

// TestWorkerPartitionLeaseExpiresAndReroutes is the tentpole scenario: a
// worker accepts a job and goes silent mid-flight. The lease lapses, the
// job re-routes to the surviving worker, finishes exactly once with the
// same metrics an undisturbed run would produce, and the journal audit
// trail records the whole episode.
func TestWorkerPartitionLeaseExpiresAndReroutes(t *testing.T) {
	w0, w1 := newStubWorker(t), newStubWorker(t)
	dir := t.TempDir()
	opt := remoteOptions(w0.URL(), w1.URL())
	opt.JournalDir = dir
	s := newSched(t, opt)

	req := reqForLane(t, s, 0)
	w0.setMode(modePartition)

	jb, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, jerr := waitTerminal(t, jb, 10*time.Second); st != StateDone {
		t.Fatalf("job finished %q (%v), want done on the surviving worker", st, jerr)
	}
	v := jb.View()
	if v.Backend != "remote-1" {
		t.Errorf("job finished on %q, want remote-1", v.Backend)
	}
	if v.Reroutes < 1 {
		t.Errorf("view reroutes = %d, want >= 1", v.Reroutes)
	}
	out, ok := s.Outcome(jb.ID)
	if !ok {
		t.Fatal("no outcome stored")
	}
	want := stubResult(req)
	for id, m := range want.Metrics {
		if out.Metrics[id] != m {
			t.Errorf("flow %v metrics after re-route = %+v, want the undisturbed %+v", id, out.Metrics[id], m)
		}
	}
	snap := s.Stats()
	if snap.LeaseExpirations < 1 || snap.Reroutes < 1 {
		t.Errorf("stats lease_expirations=%d reroutes=%d, want both >= 1", snap.LeaseExpirations, snap.Reroutes)
	}

	// Release the partitioned attempt and let its zombie unwind before the
	// audit, so the exactly-once claim is tested, not raced.
	w0.setMode(modeOK)
	time.Sleep(20 * time.Millisecond)
	auditJournal(t, dir, map[string]string{jb.ID: journal.EventDone})
	entries, _, err := journal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	var leased, expired, rerouted int
	for _, e := range entries {
		switch e.Event {
		case journal.EventLeased:
			leased++
			if e.Deadline == nil {
				t.Error("leased event lacks a deadline")
			}
		case journal.EventLeaseExpired:
			expired++
		case journal.EventRerouted:
			rerouted++
			if e.Backend != "remote-1" {
				t.Errorf("rerouted event names %q, want remote-1", e.Backend)
			}
		}
	}
	if leased < 2 || expired < 1 || rerouted < 1 {
		t.Errorf("journal: leased=%d expired=%d rerouted=%d, want >=2/>=1/>=1", leased, expired, rerouted)
	}
}

// auditJournal asserts the exactly-once contract on a journal directory:
// every listed job has exactly one submitted event and exactly one terminal
// event (of the expected flavor, "" for any).
func auditJournal(t *testing.T, dir string, jobs map[string]string) {
	t.Helper()
	entries, _, err := journal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	submitted := map[string]int{}
	terminal := map[string]int{}
	lastTerminal := map[string]string{}
	for _, e := range entries {
		switch e.Event {
		case journal.EventSubmitted:
			submitted[e.Job]++
		case journal.EventDone, journal.EventFailed, journal.EventCanceled:
			terminal[e.Job]++
			lastTerminal[e.Job] = e.Event
		}
	}
	for id, want := range jobs {
		if submitted[id] != 1 {
			t.Errorf("journal: job %s has %d submitted events, want exactly 1", id, submitted[id])
		}
		if terminal[id] != 1 {
			t.Errorf("journal: job %s has %d terminal events, want exactly 1 (double completion?)", id, terminal[id])
		}
		if want != "" && lastTerminal[id] != want {
			t.Errorf("journal: job %s terminal event = %q, want %q", id, lastTerminal[id], want)
		}
	}
}

// TestLapsedLeaseIsNotRenewable: a renewal landing after the lease
// deadline must not resurrect the lease. Without this rule a partition
// that heals while the old attempt's response path is still dead lets the
// renewal loop's now-successful pings keep the job leased — and the
// attempt hung — forever; with it, the lapsed lease stays expired for the
// monitor to re-route.
func TestLapsedLeaseIsNotRenewable(t *testing.T) {
	jb := &Job{state: StateRunning, epoch: 3}
	now := time.Now()
	if !jb.setLease(3, now.Add(30*time.Millisecond)) {
		t.Fatal("lease grant refused")
	}
	if !jb.renewLease(3, now, now.Add(60*time.Millisecond)) {
		t.Error("live lease with the right epoch refused renewal")
	}
	if jb.renewLease(2, now, now.Add(time.Hour)) {
		t.Error("stale epoch renewed the lease")
	}
	late := now.Add(time.Second)
	if jb.renewLease(3, late, late.Add(time.Hour)) {
		t.Error("lapsed lease was resurrected by a late renewal")
	}
	if _, expired := jb.leaseExpired(late); !expired {
		t.Error("lease not reported expired after the refused renewal")
	}
}

// TestLeaseExpiryWithNoLiveLaneFailsUnavailable: when every lane is gone,
// an expired lease fails the job with the backend-unavailability class (the
// 503 path), not the cancellation the monitor used to stop the attempt.
func TestLeaseExpiryWithNoLiveLaneFailsUnavailable(t *testing.T) {
	w := newStubWorker(t)
	s := newSched(t, remoteOptions(w.URL()))

	w.setMode(modePartition)
	jb, err := s.Submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Solver: "greedy"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, jerr := waitTerminal(t, jb, 10*time.Second)
	if st != StateFailed {
		t.Fatalf("job finished %q (%v), want failed", st, jerr)
	}
	if !errors.Is(jerr, errs.ErrUnavailable) {
		t.Errorf("job error = %v, want ErrUnavailable", jerr)
	}
	if errors.Is(jerr, errs.ErrCanceled) {
		t.Errorf("job error = %v leaks the monitor's cancellation", jerr)
	}
	w.setMode(modeOK)
}

// TestBreakerEjectsDeadWorkerWithinWindow: the prober opens a dead lane's
// circuit within threshold × interval even with no traffic, traffic routed
// to the dead lane's keyspace spills onto the live lane, and a healed
// worker is readmitted by the next probe.
func TestBreakerEjectsDeadWorkerWithinWindow(t *testing.T) {
	w0, w1 := newStubWorker(t), newStubWorker(t)
	s := newSched(t, remoteOptions(w0.URL(), w1.URL()))

	w0.setMode(modeDead)
	waitCircuit(t, s, 0, CircuitOpen)

	// A job whose hash home is the dead lane must not be dispatched there:
	// submit routes by pure hash, the circuit-open dispatch re-routes.
	req := reqForLane(t, s, 0)
	jb, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, jerr := waitTerminal(t, jb, 10*time.Second); st != StateDone {
		t.Fatalf("job finished %q (%v), want done via the live lane", st, jerr)
	}
	if v := jb.View(); v.Backend != "remote-1" {
		t.Errorf("job finished on %q, want remote-1", v.Backend)
	}
	if got := w0.execs.Load(); got != 0 {
		t.Errorf("dead worker received %d dispatches, want 0 (circuit should short them)", got)
	}

	w0.setMode(modeOK)
	waitCircuit(t, s, 0, CircuitClosed)
	if s.Stats().Backends[0].HeartbeatRTTms <= 0 {
		t.Error("readmitted lane reports no heartbeat RTT")
	}
}

// waitCircuit polls Stats until lane idx reports the wanted circuit state.
func waitCircuit(t *testing.T, s *Scheduler, idx int, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats().Backends[idx].Circuit; st == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lane %d circuit stuck in %q, want %q", idx, s.Stats().Backends[idx].Circuit, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCorruptResponseRetriedOnLane: a single corrupted response is a
// transient transport failure — the scheduler's backoff retries it on the
// same lane and the job completes without a re-route.
func TestCorruptResponseRetriedOnLane(t *testing.T) {
	w := newStubWorker(t)
	s := newSched(t, remoteOptions(w.URL()))

	restore := fault.Install(fault.NewPlan(fault.Rule{Point: FaultDispatch, Kind: fault.KindCorrupt, Hit: 1}))
	defer restore()

	jb, err := s.Submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Solver: "greedy"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, jerr := waitTerminal(t, jb, 10*time.Second); st != StateDone {
		t.Fatalf("job finished %q (%v), want done after one retry", st, jerr)
	}
	v := jb.View()
	if v.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (corrupt first, clean retry)", v.Attempts)
	}
	if v.Reroutes != 0 {
		t.Errorf("reroutes = %d, want 0 (same-lane retry)", v.Reroutes)
	}
	if snap := s.Stats(); snap.Backends[0].DispatchFailures != 1 {
		t.Errorf("dispatch failures = %d, want 1", snap.Backends[0].DispatchFailures)
	}
}

// TestWorkerBusyBacksOffThenLands: 503 + Retry-After from a worker at
// capacity is transient; the dispatch retries and lands.
func TestWorkerBusyBacksOffThenLands(t *testing.T) {
	w := newStubWorker(t)
	w.setBusy(1)
	s := newSched(t, remoteOptions(w.URL()))

	jb, err := s.Submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Solver: "greedy"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, jerr := waitTerminal(t, jb, 10*time.Second); st != StateDone {
		t.Fatalf("job finished %q (%v), want done", st, jerr)
	}
	if v := jb.View(); v.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", v.Attempts)
	}
}

// TestReplayIgnoresRecordedLaneAfterTopologyChange is the negative replay
// test: the journal records a lane ("remote-3") that does not exist in the
// restarted topology. Replay must route through the live ring and run the
// job on a real lane instead of mis-routing or wedging.
func TestReplayIgnoresRecordedLaneAfterTopologyChange(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{Testcase: "aes_300", Scale: 0.02, Solver: "greedy"}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for _, e := range []journal.Entry{
		{Seq: 1, Job: "job-1", Event: journal.EventSubmitted, Request: raw, Backend: "remote-3"},
		{Seq: 1, Job: "job-1", Event: journal.EventStarted},
		{Seq: 1, Job: "job-1", Event: journal.EventLeased, Backend: "remote-3", Deadline: &deadline},
	} {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with two local lanes and zero remotes: "remote-3" is gone.
	s := newSched(t, Options{Workers: 1, Backends: 2, JournalDir: dir})
	jb := s.Job("job-1")
	if jb == nil {
		t.Fatal("replayed job not found")
	}
	if st, jerr := waitTerminal(t, jb, 60*time.Second); st != StateDone {
		t.Fatalf("replayed job finished %q (%v), want done", st, jerr)
	}
	v := jb.View()
	if !v.Replayed {
		t.Error("job does not report replayed")
	}
	wantLane := s.backends[s.ring.pick(routingKey(s.instanceKeys(&req)))].Name()
	if v.Backend != wantLane {
		t.Errorf("replayed job ran on %q, want the live ring's %q", v.Backend, wantLane)
	}
	if v.Backend == "remote-3" {
		t.Error("replayed job kept the journal's dead lane")
	}
}

// TestShutdownWithRemotesLeaksNoGoroutines: dispatchers, prober, lease
// monitor and renewal loops must all unwind on Shutdown.
func TestShutdownWithRemotesLeaksNoGoroutines(t *testing.T) {
	w := newStubWorker(t)
	before := runtime.NumGoroutine()

	s, err := New(remoteOptions(w.URL()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		jb, err := s.Submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Seed: int64(i + 1), Solver: "greedy"})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		waitTerminal(t, jb, 10*time.Second)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return // small slack for runtime/httptest housekeeping
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentSubmitStatsViews hammers intake, stats and views from many
// goroutines at once; it asserts nothing beyond "no race, no panic" and
// exists for the -race run.
func TestConcurrentSubmitStatsViews(t *testing.T) {
	w := newStubWorker(t)
	opt := remoteOptions(w.URL())
	opt.Backends = 1
	opt.Workers = 2
	s := newSched(t, opt)
	s.SetExec(func(ctx context.Context, jb *Job) (*ExecResult, error) {
		return stubResult(jb.Request()), nil
	})

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 25; i++ {
				jb, err := s.Submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Seed: int64(g*100 + i + 1), Solver: "greedy"})
				if err != nil {
					continue // queue full under pressure is fine
				}
				if i%5 == 0 {
					s.Cancel(jb.ID)
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s.Stats()
					_ = s.Views()
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	// Drain everything submitted so Cleanup's Shutdown is quick.
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, v := range s.Views() {
			if !v.State.Terminal() {
				done = false
				break
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs stuck after concurrent hammering")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
