package scheduler

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/internal/obs"
	"mthplace/internal/par"
)

// Worker-mode API paths. A peer mthserved running with -worker serves these
// two endpoints; the Remote backend is their only intended client.
const (
	// WorkerExecutePath accepts a POSTed WireJob, runs it synchronously,
	// and answers with a WireResult. Canceling the request cancels the job.
	WorkerExecutePath = "/worker/v1/execute"
	// WorkerPingPath is the heartbeat: 200 means the worker is alive and
	// parsing requests, whatever its current load. The response carries an
	// X-Worker-Time-US header (worker wall clock, unix microseconds) the
	// coordinator folds with the measured RTT into a clock-skew estimate.
	WorkerPingPath = "/worker/v1/ping"
	// WorkerSpansPath drains span batches for jobs whose WireResult never
	// reached the coordinator — a leased-then-rerouted job's worker-side
	// spans are stashed and collected here by the heartbeat prober.
	WorkerSpansPath = "/worker/v1/spans"
)

// WorkerTimeHeader carries the worker's wall clock (unix microseconds) on
// ping responses, the input to the coordinator's clock-skew correction.
const WorkerTimeHeader = "X-Worker-Time-US"

// WireJob is the dispatch body: the coordinator-assigned job ID (for log
// correlation on the worker) plus the original request. The worker re-runs
// validation — the two processes may disagree about testcase tables only if
// their binaries drifted, which should fail loudly.
type WireJob struct {
	ID  string     `json:"id"`
	Req JobRequest `json:"req"`
	// Traceparent is the coordinator's dispatch-span context in W3C form;
	// the worker re-extracts it so its solver-stage spans parent under the
	// dispatch span and share the job's TraceID. Empty disables worker-side
	// span collection (no trace context means nobody will merge them).
	Traceparent string `json:"traceparent,omitempty"`
}

// WireResult is the execute response. Exactly one of {Metrics+Placements,
// Error} is populated; transport-level problems never use this shape (they
// surface as non-200 statuses or broken bodies). Class carries the error's
// taxonomy so the coordinator can rebuild a typed error that errors.Is
// still classifies after the round trip.
type WireResult struct {
	Metrics    map[flow.ID]flow.Metrics `json:"metrics,omitempty"`
	Placements map[flow.ID]string       `json:"placements,omitempty"`
	Error      string                   `json:"error,omitempty"`
	Class      string                   `json:"class,omitempty"`
	// Spans piggybacks the worker's trace records for this execution —
	// present on errored results too (a failed attempt's timeline is part
	// of the job's story). Timestamps are the worker's clock; the
	// coordinator skew-corrects them on ingest.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// WireSpanBatch is one job's stashed span set, drained from
// /worker/v1/spans when its WireResult never made it back.
type WireSpanBatch struct {
	Job   string           `json:"job"`
	Spans []obs.SpanRecord `json:"spans"`
}

// Error-class wire names (WireResult.Class).
const (
	ClassPanic      = "panic"
	ClassInfeasible = "infeasible"
	ClassTimeout    = "timeout"
	ClassCanceled   = "canceled"
	ClassTransient  = "transient"
	ClassError      = "error"
)

// ErrorClass names err's place in the errs taxonomy for the wire. Order
// matters: a panic that carried a transient error must still class as a
// panic, or the coordinator would retry a bug.
func ErrorClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, errs.ErrPanic):
		return ClassPanic
	case errors.Is(err, errs.ErrInfeasible):
		return ClassInfeasible
	case errors.Is(err, errs.ErrTimeout):
		return ClassTimeout
	case errors.Is(err, errs.ErrCanceled):
		return ClassCanceled
	case errors.Is(err, errs.ErrTransient):
		return ClassTransient
	default:
		return ClassError
	}
}

// errorFromClass rebuilds a typed error from its wire form, so the
// coordinator's retry and status-code logic treats a remote failure exactly
// like a local one. Unknown classes degrade to an untyped error.
func errorFromClass(class, msg string) error {
	switch class {
	case "":
		return nil
	case ClassPanic:
		return fmt.Errorf("%s: %w", msg, errs.ErrPanic)
	case ClassInfeasible:
		return fmt.Errorf("%s: %w", msg, errs.ErrInfeasible)
	case ClassTimeout:
		return fmt.Errorf("%s: %w", msg, errs.ErrTimeout)
	case ClassCanceled:
		return fmt.Errorf("%s: %w", msg, errs.ErrCanceled)
	case ClassTransient:
		return fmt.Errorf("%s: %w", msg, errs.ErrTransient)
	default:
		return errors.New(msg)
	}
}

// RunRequest executes one job request's flows sequentially on a fresh
// Runner, exactly like a direct flow.Runner caller would — the shared core
// of the scheduler's local lanes and the worker-mode server, which is what
// makes a remotely executed job's metrics byte-identical to a local run's.
// pool may be nil (each flow then gets the runner default); onFlow, when
// non-nil, observes each flow's completion latency.
func RunRequest(ctx context.Context, req JobRequest, pool *par.Pool, defaultSolver string, onFlow func(flow.ID, time.Duration)) (*ExecResult, error) {
	spec, ids, err := req.validate()
	if err != nil {
		return nil, err
	}
	cfg := req.config(pool, defaultSolver)
	r, err := flow.NewRunner(ctx, spec, cfg)
	if err != nil {
		return nil, err
	}
	out := &ExecResult{
		Metrics:    make(map[flow.ID]flow.Metrics, len(ids)),
		Placements: make(map[flow.ID]string, len(ids)),
	}
	for _, id := range ids {
		t0 := time.Now()
		res, err := r.Run(ctx, id, req.Route)
		if err != nil {
			return nil, err
		}
		out.Metrics[id] = res.Metrics
		out.Placements[id] = PlacementDigest(res.Design)
		if onFlow != nil {
			onFlow(id, time.Since(t0))
		}
	}
	return out, nil
}
