package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/internal/synth"
)

// testHarness wires a Server behind an httptest front end.
type testHarness struct {
	t   *testing.T
	srv *Server
	web *httptest.Server
}

func newHarness(t *testing.T, opt Options) *testHarness {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		web.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return &testHarness{t: t, srv: s, web: web}
}

func (h *testHarness) do(method, path string, body any) (int, map[string]json.RawMessage) {
	h.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			h.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, h.web.URL+path, &buf)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		h.t.Fatalf("%s %s: decoding body: %v", method, path, err)
	}
	return resp.StatusCode, m
}

func (h *testHarness) submit(req JobRequest) string {
	h.t.Helper()
	code, body := h.do("POST", "/jobs", req)
	if code != http.StatusAccepted {
		h.t.Fatalf("submit: status %d, body %v", code, body)
	}
	var id string
	if err := json.Unmarshal(body["id"], &id); err != nil {
		h.t.Fatal(err)
	}
	return id
}

func (h *testHarness) state(id string) State {
	h.t.Helper()
	code, body := h.do("GET", "/jobs/"+id, nil)
	if code != http.StatusOK {
		h.t.Fatalf("status %s: %d", id, code)
	}
	var st State
	if err := json.Unmarshal(body["state"], &st); err != nil {
		h.t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches want (or any terminal state when
// want is empty), failing on timeout.
func (h *testHarness) waitState(id string, want State) State {
	h.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := h.state(id)
		if st == want || (want == "" && st.Terminal()) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.t.Fatalf("job %s never reached %q (last %q)", id, want, h.state(id))
	return ""
}

// zeroTimes strips wall-clock fields so the deterministic remainder
// compares with ==.
func zeroTimes(m flow.Metrics) flow.Metrics {
	m.RAPTime, m.LegalTime, m.TotalTime = 0, 0, 0
	return m
}

// TestEndToEndMatchesDirectRunner is the acceptance check: metrics fetched
// over HTTP for Flows (2) and (5) equal a direct flow.Runner run of the
// same spec and config, field for field (wall-clock times excluded).
func TestEndToEndMatchesDirectRunner(t *testing.T) {
	h := newHarness(t, Options{Workers: 2, QueueDepth: 4})
	const scale = 0.02
	spec := synth.TableII()[0] // aes_300, the smallest-cell aes point

	id := h.submit(JobRequest{Testcase: spec.Name(), Flows: []int{2, 5}, Scale: scale})
	if st := h.waitState(id, ""); st != StateDone {
		t.Fatalf("job finished %q, want done", st)
	}
	code, body := h.do("GET", "/jobs/"+id+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: status %d, body %v", code, body)
	}
	var metrics map[string]flow.Metrics
	if err := json.Unmarshal(body["metrics"], &metrics); err != nil {
		t.Fatal(err)
	}

	cfg := flow.DefaultConfig()
	cfg.Synth.Scale = scale
	r, err := flow.NewRunner(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, fid := range []flow.ID{flow.Flow2, flow.Flow5} {
		res, err := r.Run(context.Background(), fid, false)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := metrics[fmt.Sprintf("%d", int(fid))]
		if !ok {
			t.Fatalf("result missing %v", fid)
		}
		if zeroTimes(got) != zeroTimes(res.Metrics) {
			t.Errorf("%v: HTTP metrics diverge from direct runner:\n got %+v\nwant %+v",
				fid, zeroTimes(got), zeroTimes(res.Metrics))
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	h := newHarness(t, Options{})
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"no spec", JobRequest{Flows: []int{5}}},
		{"unknown testcase", JobRequest{Testcase: "nope_123"}},
		{"flow out of range", JobRequest{Testcase: "aes_300", Flows: []int{9}}},
		{"both spec and testcase", JobRequest{Testcase: "aes_300", Spec: &synth.Spec{Circuit: "x", Cells: 10}}},
		{"negative jobs", JobRequest{Testcase: "aes_300", Jobs: -1}},
	}
	for _, tc := range cases {
		if code, _ := h.do("POST", "/jobs", tc.req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(h.web.URL+"/jobs", "application/json", bytes.NewBufferString("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if code, _ := h.do("GET", "/jobs/job-999", nil); code != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", code)
	}
}

// blockingExec replaces the real flow execution with one that parks until
// released (or canceled), making queue and cancellation behavior
// deterministic.
func blockingExec(release <-chan struct{}) func(context.Context, *Job) (map[flow.ID]flow.Metrics, error) {
	return func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
		select {
		case <-release:
			return map[flow.ID]flow.Metrics{flow.Flow5: {Flow: flow.Flow5, HPWL: 42}}, nil
		case <-ctx.Done():
			return nil, errs.FromContext(ctx)
		}
	}
}

func TestQueueBackpressureAndCancel(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	h.srv.setExec(blockingExec(release))
	req := JobRequest{Testcase: "aes_300"}

	running := h.submit(req)
	h.waitState(running, StateRunning)
	// Result is 409 while the job is in flight.
	if code, _ := h.do("GET", "/jobs/"+running+"/result", nil); code != http.StatusConflict {
		t.Errorf("result while running: status %d, want 409", code)
	}

	queued := h.submit(req) // fills the queue
	if code, _ := h.do("POST", "/jobs", req); code != http.StatusTooManyRequests {
		t.Errorf("overflow submit: status %d, want 429", code)
	}

	// Canceling the queued job finishes it immediately; the worker never
	// runs it.
	if code, _ := h.do("POST", "/jobs/"+queued+"/cancel", nil); code != http.StatusOK {
		t.Errorf("cancel queued: status not 200")
	}
	if st := h.state(queued); st != StateCanceled {
		t.Errorf("queued job state %q after cancel, want canceled", st)
	}
	if code, _ := h.do("GET", "/jobs/"+queued+"/result", nil); code != StatusClientClosedRequest {
		t.Errorf("canceled result: status %d, want 499", code)
	}

	// Canceling the running job cancels its context; the stub unwinds with
	// ErrCanceled exactly like a real flow would.
	if code, _ := h.do("DELETE", "/jobs/"+running, nil); code != http.StatusOK {
		t.Errorf("cancel running: status not 200")
	}
	if st := h.waitState(running, ""); st != StateCanceled {
		t.Errorf("running job finished %q after cancel, want canceled", st)
	}
	// Double cancel on a finished job is a 409.
	if code, _ := h.do("POST", "/jobs/"+running+"/cancel", nil); code != http.StatusConflict {
		t.Errorf("double cancel: status not 409")
	}

	// The worker is free again: a fresh job runs to completion once
	// released.
	done := h.submit(req)
	h.waitState(done, StateRunning)
	close(release)
	if st := h.waitState(done, ""); st != StateDone {
		t.Errorf("released job finished %q, want done", st)
	}
	code, body := h.do("GET", "/jobs/"+done+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("released result: status %d", code)
	}
	var metrics map[string]flow.Metrics
	if err := json.Unmarshal(body["metrics"], &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics["5"].HPWL != 42 {
		t.Errorf("released result HPWL = %d, want 42", metrics["5"].HPWL)
	}
}

func TestErrorMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{errs.Infeasible("capacity exceeded"), http.StatusUnprocessableEntity},
		{fmt.Errorf("stage: %w", errs.ErrTimeout), http.StatusGatewayTimeout},
		{fmt.Errorf("stage: %w", errs.ErrCanceled), StatusClientClosedRequest},
		{errors.New("disk on fire"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		h := newHarness(t, Options{Workers: 1})
		failErr := tc.err
		h.srv.setExec(func(ctx context.Context, jb *Job) (map[flow.ID]flow.Metrics, error) {
			return nil, failErr
		})
		id := h.submit(JobRequest{Testcase: "aes_300"})
		h.waitState(id, "")
		if code, body := h.do("GET", "/jobs/"+id+"/result", nil); code != tc.want {
			t.Errorf("%v: result status %d, want %d (body %v)", tc.err, code, tc.want, body)
		}
	}
}

// TestGracefulShutdown: intake stops, queued jobs are canceled, the
// in-flight job drains to completion, and Shutdown returns clean.
func TestGracefulShutdown(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.setExec(blockingExec(release))
	web := httptest.NewServer(s.Handler())
	defer web.Close()
	h := &testHarness{t: t, srv: s, web: web}

	req := JobRequest{Testcase: "aes_300"}
	running := h.submit(req)
	h.waitState(running, StateRunning)
	queued := h.submit(req)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Intake closes immediately; health flips to 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := h.do("GET", "/healthz", nil)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := h.do("POST", "/jobs", req); code != http.StatusServiceUnavailable {
		t.Errorf("submit during shutdown: status %d, want 503", code)
	}
	// The queued job was canceled without running.
	if st := h.waitState(queued, ""); st != StateCanceled {
		t.Errorf("queued job %q at shutdown, want canceled", st)
	}

	// The in-flight job drains to a normal completion.
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if st := h.state(running); st != StateDone {
		t.Errorf("in-flight job finished %q, want done (drained)", st)
	}
}

// TestShutdownDeadlineAbortsInFlight: when the drain budget expires, the
// in-flight job's context is canceled and Shutdown reports the deadline.
func TestShutdownDeadlineAbortsInFlight(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{}) // never closed: the job only ends by cancel
	s.setExec(blockingExec(release))
	web := httptest.NewServer(s.Handler())
	defer web.Close()
	h := &testHarness{t: t, srv: s, web: web}

	id := h.submit(JobRequest{Testcase: "aes_300"})
	h.waitState(id, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown returned %v, want DeadlineExceeded", err)
	}
	if st := h.state(id); st != StateCanceled {
		t.Errorf("in-flight job %q after forced shutdown, want canceled", st)
	}
}

func TestStatsEndpoint(t *testing.T) {
	h := newHarness(t, Options{Workers: 2, QueueDepth: 8})
	release := make(chan struct{})
	h.srv.setExec(blockingExec(release))

	id := h.submit(JobRequest{Testcase: "aes_300"})
	h.waitState(id, StateRunning)

	code, body := h.do("GET", "/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	var busy int
	if err := json.Unmarshal(body["busy_workers"], &busy); err != nil {
		t.Fatal(err)
	}
	if busy != 1 {
		t.Errorf("busy_workers = %d, want 1", busy)
	}
	var workers int
	if err := json.Unmarshal(body["workers"], &workers); err != nil {
		t.Fatal(err)
	}
	if workers != 2 {
		t.Errorf("workers = %d, want 2", workers)
	}
	close(release)
	h.waitState(id, StateDone)

	// Latency percentiles appear once real flows complete; the stub records
	// none, so just assert the field decodes.
	_, body = h.do("GET", "/stats", nil)
	var lat map[string]FlowLatency
	if err := json.Unmarshal(body["flow_latency"], &lat); err != nil {
		t.Fatalf("flow_latency malformed: %v", err)
	}
}

// TestListOrder: GET /jobs returns submission order.
func TestListOrder(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	defer close(release)
	h.srv.setExec(blockingExec(release))

	var want []string
	for i := 0; i < 3; i++ {
		want = append(want, h.submit(JobRequest{Testcase: "aes_300"}))
	}
	code, body := h.do("GET", "/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var views []JobView
	if err := json.Unmarshal(body["jobs"], &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != len(want) {
		t.Fatalf("listed %d jobs, want %d", len(views), len(want))
	}
	for i := range views {
		if views[i].ID != want[i] {
			t.Errorf("list[%d] = %s, want %s", i, views[i].ID, want[i])
		}
	}
}
