package worker_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/internal/server/scheduler"
	"mthplace/internal/server/worker"
)

func newWorkerServer(t *testing.T, opt worker.Options, exec worker.ExecFunc) (*worker.Handler, *httptest.Server) {
	t.Helper()
	h := worker.New(opt)
	if exec != nil {
		h.SetExec(exec)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return h, srv
}

func execute(t *testing.T, srv *httptest.Server, wj scheduler.WireJob) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(wj)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+scheduler.WorkerExecutePath, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestWorkerExecuteSuccess(t *testing.T) {
	want := &scheduler.ExecResult{
		Metrics:    map[flow.ID]flow.Metrics{0: {HPWL: 4242, SolveRung: "ilp", Solver: "stub"}},
		Placements: map[flow.ID]string{0: "deadbeef"},
	}
	var got scheduler.JobRequest
	_, srv := newWorkerServer(t, worker.Options{}, func(_ context.Context, req scheduler.JobRequest) (*scheduler.ExecResult, error) {
		got = req
		return want, nil
	})

	resp, raw := execute(t, srv, scheduler.WireJob{
		ID:  "job-1",
		Req: scheduler.JobRequest{Testcase: "aes_300", Seed: 7, Scale: 0.25, Solver: "greedy"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%s)", resp.StatusCode, raw)
	}
	if got.Testcase != "aes_300" || got.Seed != 7 {
		t.Fatalf("exec saw request %+v, want the dispatched one", got)
	}
	var wr scheduler.WireResult
	if err := json.Unmarshal(raw, &wr); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if wr.Error != "" || wr.Class != "" {
		t.Fatalf("unexpected error in result: %q (class %q)", wr.Error, wr.Class)
	}
	if wr.Metrics[0] != want.Metrics[0] || wr.Placements[0] != want.Placements[0] {
		t.Fatalf("result round-trip mangled payload: %+v", wr)
	}
}

func TestWorkerAtCapacityRefusesWithRetryAfter(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	_, srv := newWorkerServer(t, worker.Options{Slots: 1}, func(ctx context.Context, _ scheduler.JobRequest) (*scheduler.ExecResult, error) {
		started <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &scheduler.ExecResult{}, nil
	})
	defer close(block)

	hog, _ := json.Marshal(scheduler.WireJob{ID: "hog", Req: scheduler.JobRequest{Testcase: "aes_300"}})
	go func() {
		resp, err := http.Post(srv.URL+scheduler.WorkerExecutePath, "application/json", strings.NewReader(string(hog)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first dispatch never reached exec")
	}

	resp, raw := execute(t, srv, scheduler.WireJob{ID: "spill", Req: scheduler.JobRequest{Testcase: "aes_300"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}

func TestWorkerErrorClassTravels(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"infeasible", errs.Infeasible("track budget exceeded"), scheduler.ClassInfeasible},
		{"transient", errs.Transient("solver wobble"), scheduler.ClassTransient},
		{"plain", errors.New("something opaque"), scheduler.ClassError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, srv := newWorkerServer(t, worker.Options{}, func(context.Context, scheduler.JobRequest) (*scheduler.ExecResult, error) {
				return nil, tc.err
			})
			resp, raw := execute(t, srv, scheduler.WireJob{ID: "job-e", Req: scheduler.JobRequest{Testcase: "aes_300"}})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, want 200 — job errors ride the WireResult, not HTTP", resp.StatusCode)
			}
			var wr scheduler.WireResult
			if err := json.Unmarshal(raw, &wr); err != nil {
				t.Fatal(err)
			}
			if wr.Error == "" {
				t.Fatal("error did not travel")
			}
			if wr.Class != tc.want {
				t.Fatalf("class = %q, want %q", wr.Class, tc.want)
			}
		})
	}
}

func TestWorkerPanicBecomesPanicClass(t *testing.T) {
	_, srv := newWorkerServer(t, worker.Options{}, func(context.Context, scheduler.JobRequest) (*scheduler.ExecResult, error) {
		panic("solver exploded")
	})
	resp, raw := execute(t, srv, scheduler.WireJob{ID: "job-p", Req: scheduler.JobRequest{Testcase: "aes_300"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 — the recover boundary must answer, not crash", resp.StatusCode)
	}
	var wr scheduler.WireResult
	if err := json.Unmarshal(raw, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Class != scheduler.ClassPanic {
		t.Fatalf("class = %q, want %q (error %q)", wr.Class, scheduler.ClassPanic, wr.Error)
	}
	if !strings.Contains(wr.Error, "solver exploded") {
		t.Fatalf("panic payload lost: %q", wr.Error)
	}

	// The worker survives to serve the next job.
	resp2, _ := http.Get(srv.URL + scheduler.WorkerPingPath)
	if resp2 == nil || resp2.StatusCode != http.StatusOK {
		t.Fatal("worker did not survive the panic")
	}
	resp2.Body.Close()
}

func TestWorkerBadBodyIsBadRequest(t *testing.T) {
	_, srv := newWorkerServer(t, worker.Options{}, nil)
	resp, err := http.Post(srv.URL+scheduler.WorkerExecutePath, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestWorkerPing(t *testing.T) {
	_, srv := newWorkerServer(t, worker.Options{}, nil)
	resp, err := http.Get(srv.URL + scheduler.WorkerPingPath)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(raw)) != "ok" {
		t.Fatalf("ping = %d %q, want 200 \"ok\"", resp.StatusCode, raw)
	}
}

func TestWorkerMetricsCount(t *testing.T) {
	h, srv := newWorkerServer(t, worker.Options{}, func(context.Context, scheduler.JobRequest) (*scheduler.ExecResult, error) {
		return nil, errs.Infeasible("nope")
	})
	execute(t, srv, scheduler.WireJob{ID: "m1", Req: scheduler.JobRequest{Testcase: "aes_300"}})
	execute(t, srv, scheduler.WireJob{ID: "m2", Req: scheduler.JobRequest{Testcase: "aes_300"}})

	ms := httptest.NewServer(h.MetricsHandler())
	defer ms.Close()
	resp, err := http.Get(ms.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{"worker_jobs_total 2", "worker_job_errors_total 2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
