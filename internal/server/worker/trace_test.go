package worker_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"mthplace/internal/obs"
	"mthplace/internal/server/scheduler"
	"mthplace/internal/server/worker"
)

const workerTP = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

// TestWorkerTracedExecuteReturnsSpans: a dispatch carrying a traceparent
// runs under a worker-local tracer, and the collected spans — the execute
// span plus whatever the solve recorded — ride back on the WireResult,
// correctly parented into the coordinator's trace.
func TestWorkerTracedExecuteReturnsSpans(t *testing.T) {
	_, srv := newWorkerServer(t, worker.Options{}, func(ctx context.Context, _ scheduler.JobRequest) (*scheduler.ExecResult, error) {
		sp := obs.StartSpan(ctx, "flow.solve")
		sp.End()
		return &scheduler.ExecResult{}, nil
	})

	resp, raw := execute(t, srv, scheduler.WireJob{
		ID:          "job-t",
		Req:         scheduler.JobRequest{Testcase: "aes_300"},
		Traceparent: workerTP,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, raw)
	}
	var wr scheduler.WireResult
	if err := json.Unmarshal(raw, &wr); err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.SpanRecord{}
	for _, r := range wr.Spans {
		byName[r.Name] = r
	}
	exec, ok := byName["execute"]
	if !ok {
		t.Fatalf("no execute span in %+v", wr.Spans)
	}
	if exec.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("execute span trace = %q, want the dispatched one", exec.TraceID)
	}
	if exec.Parent != "b7ad6b7169203331" {
		t.Errorf("execute span parent = %q, want the dispatch span %q", exec.Parent, "b7ad6b7169203331")
	}
	solve, ok := byName["flow.solve"]
	if !ok {
		t.Fatalf("solver span missing from %+v", wr.Spans)
	}
	if solve.Parent != exec.SpanID {
		t.Errorf("solver span parent = %q, want execute span %q", solve.Parent, exec.SpanID)
	}
}

// TestWorkerUntracedExecuteReturnsNoSpans: no traceparent, no tracer — a
// plain dispatch must not pay for span collection or carry any back.
func TestWorkerUntracedExecuteReturnsNoSpans(t *testing.T) {
	_, srv := newWorkerServer(t, worker.Options{}, func(ctx context.Context, _ scheduler.JobRequest) (*scheduler.ExecResult, error) {
		if obs.TracerFrom(ctx) != nil {
			t.Error("untraced dispatch got a tracer")
		}
		return &scheduler.ExecResult{}, nil
	})
	_, raw := execute(t, srv, scheduler.WireJob{ID: "job-u", Req: scheduler.JobRequest{Testcase: "aes_300"}})
	var wr scheduler.WireResult
	if err := json.Unmarshal(raw, &wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Spans) != 0 {
		t.Fatalf("untraced execute returned spans: %+v", wr.Spans)
	}
}

// TestWorkerPingCarriesClock: the ping response stamps the worker's clock
// in X-Worker-Time-US, the input to the coordinator's skew correction.
func TestWorkerPingCarriesClock(t *testing.T) {
	_, srv := newWorkerServer(t, worker.Options{}, nil)
	before := time.Now().UnixMicro()
	resp, err := http.Get(srv.URL + scheduler.WorkerPingPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	after := time.Now().UnixMicro()
	us, err := strconv.ParseInt(resp.Header.Get(scheduler.WorkerTimeHeader), 10, 64)
	if err != nil {
		t.Fatalf("bad %s header: %v", scheduler.WorkerTimeHeader, err)
	}
	if us < before || us > after {
		t.Errorf("worker clock %d outside [%d, %d]", us, before, after)
	}
}

// TestWorkerStashesSpansWhenResponseUndeliverable: when the coordinator
// hangs up mid-execute (lease expired, job rerouted), the WireResult has
// nowhere to go — the worker must stash the spans and surrender them to
// the next GET /worker/v1/spans, exactly once.
func TestWorkerStashesSpansWhenResponseUndeliverable(t *testing.T) {
	started := make(chan struct{}, 1)
	_, srv := newWorkerServer(t, worker.Options{}, func(ctx context.Context, _ scheduler.JobRequest) (*scheduler.ExecResult, error) {
		started <- struct{}{}
		<-ctx.Done() // runs until the client vanishes
		return &scheduler.ExecResult{}, nil
	})

	body, _ := json.Marshal(scheduler.WireJob{
		ID:          "job-s",
		Req:         scheduler.JobRequest{Testcase: "aes_300"},
		Traceparent: workerTP,
	})
	cctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, srv.URL+scheduler.WorkerExecutePath, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch never reached exec")
	}
	cancel() // the "coordinator" hangs up; the handler finishes into the void
	<-errc

	// The handler unwinds asynchronously after the client is gone; poll the
	// drain endpoint until the stashed batch appears.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + scheduler.WorkerSpansPath)
		if err != nil {
			t.Fatal(err)
		}
		var batches []scheduler.WireSpanBatch
		err = json.NewDecoder(resp.Body).Decode(&batches)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(batches) > 0 {
			if batches[0].Job != "job-s" {
				t.Fatalf("stashed batch for job %q, want job-s", batches[0].Job)
			}
			found := false
			for _, r := range batches[0].Spans {
				if r.Name == "execute" && r.TraceID == "0af7651916cd43dd8448eb211c80319c" {
					found = true
				}
			}
			if !found {
				t.Fatalf("stashed spans missing the execute span: %+v", batches[0].Spans)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stashed spans never appeared on the drain endpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The drain is a take: a second poll must come back empty.
	resp, err := http.Get(srv.URL + scheduler.WorkerSpansPath)
	if err != nil {
		t.Fatal(err)
	}
	var again []scheduler.WireSpanBatch
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(again) != 0 {
		t.Fatalf("second drain returned %d batches, want 0", len(again))
	}
}
