// Package worker is the execution side of the multi-process job fabric: a
// small HTTP API (mthserved -worker) that runs placement jobs dispatched
// by a coordinator's Remote backend and answers its heartbeats.
//
// The API is deliberately tiny and synchronous. POST /worker/v1/execute
// carries one scheduler.WireJob; the worker runs it to completion on the
// request's own context — so the coordinator canceling or abandoning the
// request cancels the job, which is the whole cancellation protocol — and
// answers with a scheduler.WireResult. There is no worker-side queue, no
// worker-side journal and no worker-side retry: the coordinator owns the
// job lifecycle (leases, retries, re-routes, exactly-once commitment), and
// the worker owns nothing but the flows it is currently running. A worker
// at its concurrency limit answers 503 + Retry-After rather than queueing,
// which keeps the coordinator's queue-depth accounting the only backlog in
// the system.
package worker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/obs"
	"mthplace/internal/par"
	"mthplace/internal/server/scheduler"
)

// maxBody bounds the execute request body; a WireJob is small, so anything
// near this is garbage.
const maxBody = 4 << 20

// ExecFunc runs one dispatched request. Production uses
// scheduler.RunRequest; tests swap in stubs via Handler.SetExec.
type ExecFunc func(ctx context.Context, req scheduler.JobRequest) (*scheduler.ExecResult, error)

// Options tunes a worker.
type Options struct {
	// Slots is the number of jobs run concurrently (default 2); dispatches
	// beyond it get 503 + Retry-After.
	Slots int
	// PoolJobs bounds the shared solver pool jobs without a private Jobs
	// setting draw from (default GOMAXPROCS).
	PoolJobs int
	// DefaultSolver is applied to requests that name none.
	DefaultSolver string
	// Logger receives per-job diagnostics. Nil discards them.
	Logger *slog.Logger
}

// Handler serves the worker API.
type Handler struct {
	mux    *http.ServeMux
	sem    chan struct{}
	pool   *par.Pool
	solver string
	log    *slog.Logger
	exec   ExecFunc

	reg      *obs.Registry
	mJobs    *obs.Counter
	mErrors  *obs.Counter
	mRefused *obs.Counter

	stash spanRing // spans whose WireResult never reached the coordinator
}

// maxStashedBatches bounds the undelivered-span stash; a coordinator that
// never drains (or never returns) must not grow worker memory without
// bound, so the oldest batches are dropped first.
const maxStashedBatches = 256

// spanRing holds span batches for jobs whose execute response could not be
// delivered — the coordinator went away mid-run (lease expiry, reroute,
// crash). The prober drains it via GET /worker/v1/spans so those timelines
// still reach the merged trace.
type spanRing struct {
	mu      sync.Mutex
	batches []scheduler.WireSpanBatch
}

func (s *spanRing) put(job string, spans []obs.SpanRecord) {
	if len(spans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.batches) >= maxStashedBatches {
		s.batches = s.batches[1:]
	}
	s.batches = append(s.batches, scheduler.WireSpanBatch{Job: job, Spans: spans})
}

// take removes and returns every stashed batch.
func (s *spanRing) take() []scheduler.WireSpanBatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.batches
	s.batches = nil
	return out
}

// New builds a worker handler.
func New(opt Options) *Handler {
	if opt.Slots <= 0 {
		opt.Slots = 2
	}
	if opt.PoolJobs <= 0 {
		opt.PoolJobs = runtime.GOMAXPROCS(0)
	}
	if opt.Logger == nil {
		opt.Logger = obs.Nop()
	}
	h := &Handler{
		mux:    http.NewServeMux(),
		sem:    make(chan struct{}, opt.Slots),
		pool:   par.NewPool(opt.PoolJobs),
		solver: opt.DefaultSolver,
		log:    opt.Logger,
		reg:    obs.NewRegistry(),
	}
	h.mJobs = h.reg.Counter("worker_jobs_total", "Jobs executed by this worker since start.", nil)
	h.mErrors = h.reg.Counter("worker_job_errors_total", "Executed jobs that ended in an error.", nil)
	h.mRefused = h.reg.Counter("worker_refused_total", "Dispatches refused because every slot was busy.", nil)
	h.exec = func(ctx context.Context, req scheduler.JobRequest) (*scheduler.ExecResult, error) {
		return scheduler.RunRequest(ctx, req, h.pool, h.solver, nil)
	}
	h.mux.HandleFunc("POST "+scheduler.WorkerExecutePath, h.handleExecute)
	h.mux.HandleFunc("GET "+scheduler.WorkerPingPath, h.handlePing)
	h.mux.HandleFunc("GET "+scheduler.WorkerSpansPath, h.handleSpans)
	return h
}

// SetExec swaps the execution function. Test seam; call before serving.
func (h *Handler) SetExec(fn ExecFunc) { h.exec = fn }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// MetricsHandler serves the worker's private metric registry.
func (h *Handler) MetricsHandler() http.Handler { return h.reg.Handler() }

func (h *Handler) handlePing(w http.ResponseWriter, _ *http.Request) {
	// The clock stamp lets the coordinator estimate this worker's skew from
	// the ping RTT, which is how worker span timestamps land correctly on
	// the merged timeline.
	w.Header().Set(scheduler.WorkerTimeHeader, fmt.Sprintf("%d", time.Now().UnixMicro()))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleSpans drains the undelivered-span stash to the coordinator's
// prober. The response is a JSON array of WireSpanBatch.
func (h *Handler) handleSpans(w http.ResponseWriter, _ *http.Request) {
	batches := h.stash.take()
	if batches == nil {
		batches = []scheduler.WireSpanBatch{}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(batches); err != nil {
		// The drain request died; put the batches back for the next one.
		for _, b := range batches {
			h.stash.put(b.Job, b.Spans)
		}
	}
}

func (h *Handler) handleExecute(w http.ResponseWriter, r *http.Request) {
	var wj scheduler.WireJob
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err == nil {
		err = json.Unmarshal(body, &wj)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("bad dispatch body: %v", err), http.StatusBadRequest)
		return
	}
	select {
	case h.sem <- struct{}{}:
		defer func() { <-h.sem }()
	default:
		// Full slots: refuse instead of queueing, so backlog lives only at
		// the coordinator. Retry-After matches the transport's convention.
		h.mRefused.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "worker at capacity", http.StatusServiceUnavailable)
		return
	}
	h.mJobs.Inc()
	start := time.Now()
	log := h.log
	ctx := r.Context()
	// A dispatch carrying trace context gets a tracer: the execute span and
	// the flow/solver spans underneath it parent into the coordinator's
	// dispatch span and share the job's TraceID. No traceparent, no tracer —
	// nobody would merge the records.
	var tr *obs.Tracer
	var esp *obs.Span
	if sc, ok := obs.ParseTraceparent(wj.Traceparent); ok {
		log = h.log.With("trace_id", sc.TraceID)
		tr = obs.NewTracer() // Proc is stamped with the lane name on ingest
		ctx = obs.WithTracer(obs.WithSpanContext(ctx, sc), tr)
		ctx, esp = obs.StartSpanCtx(ctx, "execute")
		esp.SetArg("job", wj.ID)
	}
	log.Info("worker: job accepted", "job", wj.ID, "testcase", wj.Req.Testcase)
	res, err := h.safeExec(ctx, log, wj)
	if err == nil {
		err = errs.FromContext(r.Context())
	}
	out := scheduler.WireResult{}
	if err != nil {
		h.mErrors.Inc()
		out.Error = err.Error()
		out.Class = scheduler.ErrorClass(err)
		log.Warn("worker: job failed", "job", wj.ID, "class", out.Class, "err", err, "dur", time.Since(start))
	} else {
		out.Metrics = res.Metrics
		out.Placements = res.Placements
		log.Info("worker: job done", "job", wj.ID, "dur", time.Since(start))
	}
	if tr != nil {
		if err != nil {
			esp.SetArg("error", out.Class)
		}
		esp.End()
		out.Spans = tr.Records()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil && !errors.Is(err, context.Canceled) {
		log.Warn("worker: response write failed", "job", wj.ID, "err", err)
	} else if err == nil && r.Context().Err() == nil {
		return // delivered: the spans rode the WireResult
	}
	// The coordinator never saw this result (connection gone or context
	// dead): stash the spans for the heartbeat drain so a rerouted job's
	// worker-side timeline still reaches the merged trace.
	if tr != nil {
		h.stash.put(wj.ID, out.Spans)
	}
}

// safeExec runs the job behind a recover boundary: a panicking job must
// cost exactly one errored WireResult, never the worker process. The
// coordinator rebuilds the panic class and refuses to retry it, same as a
// local panic.
func (h *Handler) safeExec(ctx context.Context, log *slog.Logger, wj scheduler.WireJob) (res *scheduler.ExecResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = errs.FromPanic(rec, "worker: job %s", wj.ID)
		}
	}()
	ctx = obs.WithLogger(ctx, log.With("job", wj.ID))
	solver := wj.Req.Solver
	if solver == "" {
		solver = h.solver
	}
	// Label the solver goroutines so a worker CPU profile attributes its
	// samples to the job and solver that burned them.
	pprof.Do(ctx, pprof.Labels("job", wj.ID, "solver", solver), func(ctx context.Context) {
		res, err = h.exec(ctx, wj.Req)
	})
	return res, err
}
