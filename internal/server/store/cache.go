package store

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mthplace/internal/flow"
)

// Entry is one cached solve: the per-flow metrics and a digest of the final
// placement, proving a cache hit is bit-identical to the cold solve that
// produced it.
type Entry struct {
	// Metrics is the flow's full measurement record, verbatim from the run
	// that populated the entry (wall-clock fields included).
	Metrics flow.Metrics
	// Placement is the SHA-256 hex digest of the final instance positions.
	Placement string
}

// Cache is the content-addressed solve cache: Key → Entry with LRU
// eviction. All methods are safe for concurrent use.
//
// Only deterministic results belong here. Callers must not Put entries for
// degraded solves (anytime incumbents, wall-clock-budget fallbacks): their
// output depends on timing, so replaying them from cache would break the
// bit-identity contract. Proven-optimal and greedy results are pure
// functions of the instance and are always safe to cache.
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	idx map[Key]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
	// onHit/onMiss, when set, fire outside any hot loop once per lookup —
	// the seam where the server wires mth_cache_hits_total.
	onHit, onMiss func()
}

// cacheItem is the list payload.
type cacheItem struct {
	key Key
	e   Entry
}

// NewCache returns a cache bounded to capacity entries. capacity <= 0
// returns nil, which every method treats as "caching off".
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{cap: capacity, ll: list.New(), idx: make(map[Key]*list.Element)}
}

// SetHooks installs the observers fired once per counted lookup (GetAll or
// Get). Either may be nil.
func (c *Cache) SetHooks(onHit, onMiss func()) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.onHit, c.onMiss = onHit, onMiss
	c.mu.Unlock()
}

// Get looks up one key, counting a hit or a miss.
func (c *Cache) Get(k Key) (Entry, bool) {
	if c == nil {
		return Entry{}, false
	}
	es, ok := c.GetAll([]Key{k})
	if !ok {
		return Entry{}, false
	}
	return es[0], true
}

// GetAll is the all-or-nothing job lookup: it returns the entries for every
// key, in order, or ok=false if any is absent. One hit or one miss is
// counted per call — the counters measure job-level cache effectiveness,
// not per-flow probes. A full hit refreshes every entry's recency.
func (c *Cache) GetAll(keys []Key) ([]Entry, bool) {
	if c == nil || len(keys) == 0 {
		return nil, false
	}
	c.mu.Lock()
	out := make([]Entry, len(keys))
	for i, k := range keys {
		el, ok := c.idx[k]
		if !ok {
			onMiss := c.onMiss
			c.mu.Unlock()
			c.misses.Add(1)
			if onMiss != nil {
				onMiss()
			}
			return nil, false
		}
		out[i] = el.Value.(*cacheItem).e
	}
	for _, k := range keys {
		c.ll.MoveToFront(c.idx[k])
	}
	onHit := c.onHit
	c.mu.Unlock()
	c.hits.Add(1)
	if onHit != nil {
		onHit()
	}
	return out, true
}

// Put inserts (or refreshes) one entry, evicting the least recently used
// entries beyond capacity.
func (c *Cache) Put(k Key, e Entry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[k]; ok {
		el.Value.(*cacheItem).e = e
		c.ll.MoveToFront(el)
		return
	}
	c.idx[k] = c.ll.PushFront(&cacheItem{key: k, e: e})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.idx, oldest.Value.(*cacheItem).key)
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Capacity returns the eviction bound (0 for a nil cache).
func (c *Cache) Capacity() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Stats returns the lifetime hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
