package store

import (
	"sync"

	"mthplace/internal/obs"
)

// Trace-store bounds. Jobs are evicted FIFO like Results; the per-job
// record cap guards against a pathological solver attempt flooding the
// store (a normal job records a few dozen spans).
const (
	// DefaultTraceCapacity bounds how many jobs' span sets are retained.
	DefaultTraceCapacity = 4096
	// maxRecordsPerJob bounds one job's merged span set.
	maxRecordsPerJob = 4096
)

// Traces is the coordinator's per-job span set: every process's records for
// one job — coordinator dispatch spans, worker solver spans (piggybacked on
// WireResult or drained later from /worker/v1/spans), and scheduler instant
// events — accumulate here and are merged into one Chrome timeline by
// GET /v1/jobs/{id}/trace. Bounded FIFO over jobs, like Results: old jobs'
// traces are evicted in insertion order once capacity jobs are held.
type Traces struct {
	mu    sync.Mutex
	cap   int
	m     map[string][]obs.SpanRecord
	order []string
}

// NewTraces builds a trace store holding at most capacity jobs
// (DefaultTraceCapacity when <= 0).
func NewTraces(capacity int) *Traces {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Traces{cap: capacity, m: make(map[string][]obs.SpanRecord)}
}

// Add appends records to job's span set, evicting the oldest job if job is
// new and the store is full. Records past the per-job cap are dropped —
// a truncated trace beats an unbounded one.
func (t *Traces) Add(job string, recs ...obs.SpanRecord) {
	if t == nil || job == "" || len(recs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[job]; !ok {
		if len(t.order) >= t.cap {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.m, oldest)
		}
		t.order = append(t.order, job)
	}
	have := t.m[job]
	room := maxRecordsPerJob - len(have)
	if room <= 0 {
		return
	}
	if len(recs) > room {
		recs = recs[:room]
	}
	t.m[job] = append(have, recs...)
}

// Get returns a copy of job's span set (nil when unknown or evicted).
func (t *Traces) Get(job string) []obs.SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	recs := t.m[job]
	if recs == nil {
		return nil
	}
	return append([]obs.SpanRecord(nil), recs...)
}

// Len reports how many jobs currently have stored spans.
func (t *Traces) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}
