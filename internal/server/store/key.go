// Package store is the result layer of the job fabric (DESIGN.md §13): a
// bounded store of terminal job outcomes plus a content-addressed solve
// cache. The cache maps a canonical instance key — a hash over everything
// that determines a solve's output: the synthesis spec (netlist), the
// library/config knobs, and the flow — to the placement digest and metrics
// that solve produced, so heavy repeated traffic is served from memory
// instead of re-running the ILP.
//
// Canonicalization rules (the cache-key contract):
//
//   - Identity fields only. The key covers the testcase (or inline spec),
//     scale, seed, fence-pass count, solver backend, routing, and the flow
//     ID — every field that changes the bits of the result.
//   - Defaults are applied before hashing: scale 0 hashes as 1.0, seed 0 as
//     1, fence passes 0 as 3, an empty solver as the server's default. Two
//     requests that resolve to the same effective configuration share a key
//     regardless of which fields they spelled out.
//   - Execution-shape fields are excluded. Worker-pool bounds (jobs) and
//     deadlines (timeout_ms) do not enter the key: results are bit-identical
//     at any parallelism (DESIGN.md §7), and a deadline that did not fire
//     leaves no trace in the output. (Results that *were* degraded by a
//     budget are never cached — see Cache.)
//   - The encoding is canonical JSON: struct fields in declaration order,
//     map keys sorted (encoding/json guarantees both), no indentation. The
//     key is therefore byte-stable across request field reordering, map
//     iteration order, and journal marshal/unmarshal round-trips.
//   - Schema is versioned. KeySchema is mixed into every key; bumping it
//     invalidates all prior keys when the engine's output contract changes.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mthplace/internal/synth"
)

// KeySchema versions the key layout and the engine output contract. Bump it
// whenever a change makes previously cached results stale (new metric
// fields, altered solver semantics, spec format changes).
const KeySchema = 1

// Key is a content address: the lowercase hex SHA-256 of an Instance's
// canonical JSON encoding.
type Key string

// Instance is the canonical identity of one solve: a single flow of a
// single testcase under a fully resolved configuration. Field order is part
// of the hash contract — append new fields, never reorder.
type Instance struct {
	// Schema is KeySchema at hash time.
	Schema int `json:"schema"`
	// Testcase names a Table II spec; empty when Spec is inline.
	Testcase string `json:"testcase,omitempty"`
	// Spec is the inline synthesis spec, mutually exclusive with Testcase.
	Spec *synth.Spec `json:"spec,omitempty"`
	// Scale is the effective cell-count multiplier (default applied).
	Scale float64 `json:"scale"`
	// Seed is the effective deterministic stream selector (default applied).
	Seed int64 `json:"seed"`
	// FencePasses is the effective legalization pass count (default applied).
	FencePasses int `json:"fence_passes"`
	// Solver is the effective RAP backend ("milp", "rap" or "greedy").
	Solver string `json:"solver"`
	// Route records whether post-route metrics are part of the result.
	Route bool `json:"route"`
	// Flow is the flow ID this key addresses (1..5).
	Flow int `json:"flow"`
}

// Key hashes the instance into its content address.
func (i Instance) Key() Key {
	i.Schema = KeySchema
	b, err := CanonicalJSON(i)
	if err != nil {
		// Instance holds only plain data; a marshal failure is a programming
		// error, not runtime input.
		panic(fmt.Sprintf("store: canonical encoding failed: %v", err))
	}
	sum := sha256.Sum256(b)
	return Key(hex.EncodeToString(sum[:]))
}

// CanonicalJSON returns the canonical encoding used for content addressing:
// encoding/json with struct fields in declaration order and map keys sorted
// lexicographically, no indentation, no trailing newline. The same value
// always yields the same bytes, independent of map iteration order or how
// the value was produced (decoded wire request, journal replay, literal).
func CanonicalJSON(v any) ([]byte, error) {
	return json.Marshal(v)
}
