package store

import (
	"sync"

	"mthplace/internal/flow"
)

// Outcome is one job's terminal product: the metrics and placement digests
// of every flow it ran, plus whether the whole job was served from the
// solve cache. Failed jobs have no Outcome — their error lives on the
// scheduler's job record.
type Outcome struct {
	// Job is the owning job ID.
	Job string
	// Metrics holds each completed flow's measurements.
	Metrics map[flow.ID]flow.Metrics
	// Placements holds each flow's SHA-256 placement digest.
	Placements map[flow.ID]string
	// CacheHit marks an outcome materialized from the solve cache without
	// running the engine.
	CacheHit bool
}

// DefaultResultCapacity bounds the result store when the caller passes no
// explicit capacity: generous enough that polling clients never lose a
// result in practice, small enough that a long-lived server stays O(1).
const DefaultResultCapacity = 16384

// Results is the bounded terminal-outcome store, keyed by job ID. Insertion
// order is eviction order (FIFO): once capacity is exceeded the oldest
// outcome is dropped and its result endpoint reports it gone. All methods
// are safe for concurrent use.
type Results struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*Outcome
	order []string
}

// NewResults returns a store bounded to capacity outcomes (<= 0 selects
// DefaultResultCapacity).
func NewResults(capacity int) *Results {
	if capacity <= 0 {
		capacity = DefaultResultCapacity
	}
	return &Results{cap: capacity, m: make(map[string]*Outcome)}
}

// Put records a job's terminal outcome, evicting the oldest beyond
// capacity. Re-putting the same job ID replaces the outcome in place.
func (r *Results) Put(o *Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[o.Job]; !ok {
		r.order = append(r.order, o.Job)
	}
	r.m[o.Job] = o
	for len(r.order) > r.cap {
		delete(r.m, r.order[0])
		r.order = r.order[1:]
	}
}

// Get returns the outcome for a job, or ok=false when none was stored (the
// job failed, is still running, or was evicted).
func (r *Results) Get(job string) (*Outcome, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.m[job]
	return o, ok
}

// Len returns the number of stored outcomes.
func (r *Results) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}
