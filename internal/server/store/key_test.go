package store

import (
	"encoding/json"
	"fmt"
	"testing"

	"mthplace/internal/synth"
)

func baseInstance() Instance {
	return Instance{
		Testcase:    "aes_300",
		Scale:       1,
		Seed:        1,
		FencePasses: 3,
		Solver:      "milp",
		Flow:        5,
	}
}

// TestKeyDeterministic: hashing the same instance twice — and a copy built
// independently — yields byte-identical keys.
func TestKeyDeterministic(t *testing.T) {
	a := baseInstance()
	b := baseInstance()
	if a.Key() != a.Key() {
		t.Fatal("key of the same value is not stable")
	}
	if a.Key() != b.Key() {
		t.Fatalf("independently built equal instances hash differently: %s vs %s", a.Key(), b.Key())
	}
	if len(a.Key()) != 64 {
		t.Fatalf("key %q is not a hex sha256", a.Key())
	}
}

// TestKeySensitivity: every identity field changes the key; equal values
// never collide with each other.
func TestKeySensitivity(t *testing.T) {
	base := baseInstance()
	seen := map[Key]string{base.Key(): "base"}
	variants := map[string]Instance{}

	v := base
	v.Testcase = "jpeg_700"
	variants["testcase"] = v
	v = base
	v.Testcase = ""
	v.Spec = &synth.Spec{Circuit: "aes_cipher_top", ClockPs: 1000, Cells: 300, MinorityPct: 7.5, Nets: 400}
	variants["inline spec"] = v
	v = base
	v.Scale = 0.5
	variants["scale"] = v
	v = base
	v.Seed = 2
	variants["seed"] = v
	v = base
	v.FencePasses = 4
	variants["fence passes"] = v
	v = base
	v.Solver = "rap"
	variants["solver"] = v
	v = base
	v.Route = true
	variants["route"] = v
	v = base
	v.Flow = 4
	variants["flow"] = v

	for name, inst := range variants {
		k := inst.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestCanonicalJSONMapOrder: maps marshal with sorted keys regardless of
// insertion order or Go's randomized iteration, so any map-bearing value is
// safe to content-address. Exercised across many permutations to make a
// nondeterministic encoder overwhelmingly likely to trip.
func TestCanonicalJSONMapOrder(t *testing.T) {
	want, err := CanonicalJSON(map[string]int{"a": 1, "b": 2, "c": 3, "d": 4})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		m := map[string]int{}
		// Vary insertion order per trial.
		keys := []string{"a", "b", "c", "d"}
		for i := range keys {
			k := keys[(i+trial)%len(keys)]
			m[k] = int(k[0]-'a') + 1
		}
		got, err := CanonicalJSON(m)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("trial %d: canonical encoding varies: %s vs %s", trial, got, want)
		}
	}
}

// TestCanonicalJSONRoundTrip: decode → re-encode is byte-stable for the
// Instance type, the property journal replay relies on.
func TestCanonicalJSONRoundTrip(t *testing.T) {
	orig := baseInstance()
	b1, err := CanonicalJSON(orig)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Instance
	if err := json.Unmarshal(b1, &decoded); err != nil {
		t.Fatal(err)
	}
	b2, err := CanonicalJSON(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("round-trip not byte-stable:\n%s\n%s", b1, b2)
	}
	if orig.Key() != decoded.Key() {
		t.Fatalf("round-trip changed the key: %s vs %s", orig.Key(), decoded.Key())
	}
}

// TestKeySchemaMixedIn: the schema version participates in the hash, so a
// caller-supplied stale schema number cannot alias a current key.
func TestKeySchemaMixedIn(t *testing.T) {
	a := baseInstance()
	a.Schema = 0 // Key() overwrites with KeySchema
	b := baseInstance()
	b.Schema = 999 // also overwritten: Schema is not caller input
	if a.Key() != b.Key() {
		t.Fatal("Key() must normalize the schema field before hashing")
	}
	// And the schema constant genuinely lands in the encoding.
	enc, err := CanonicalJSON(Instance{Schema: KeySchema})
	if err != nil {
		t.Fatal(err)
	}
	if wantFrag := fmt.Sprintf(`"schema":%d`, KeySchema); !json.Valid(enc) || string(enc[:len(wantFrag)+1]) != "{"+wantFrag {
		t.Fatalf("encoding does not lead with the schema: %s", enc)
	}
}
