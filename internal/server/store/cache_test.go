package store

import (
	"fmt"
	"sync"
	"testing"

	"mthplace/internal/flow"
)

func testKey(i int) Key {
	inst := Instance{Testcase: fmt.Sprintf("tc-%d", i), Scale: 1, Seed: 1, FencePasses: 3, Solver: "milp", Flow: 5}
	return inst.Key()
}

func testEntry(i int) Entry {
	return Entry{Metrics: flow.Metrics{Flow: flow.Flow5, HPWL: int64(i)}, Placement: fmt.Sprintf("digest-%d", i)}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(4)
	var hits, misses int
	c.SetHooks(func() { hits++ }, func() { misses++ })

	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(testKey(1), testEntry(1))
	e, ok := c.Get(testKey(1))
	if !ok || e.Metrics.HPWL != 1 || e.Placement != "digest-1" {
		t.Fatalf("Get after Put = %+v, %v", e, ok)
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Errorf("stats = %d/%d, want 1 hit / 1 miss", h, m)
	}
	if hits != 1 || misses != 1 {
		t.Errorf("hooks fired %d/%d, want 1/1", hits, misses)
	}
}

// TestCacheGetAllAllOrNothing: a job-level lookup hits only when every flow
// key is resident, and counts exactly one hit or miss per call.
func TestCacheGetAllAllOrNothing(t *testing.T) {
	c := NewCache(8)
	c.Put(testKey(1), testEntry(1))
	c.Put(testKey(2), testEntry(2))

	if _, ok := c.GetAll([]Key{testKey(1), testKey(3)}); ok {
		t.Fatal("partial residency must be a miss")
	}
	es, ok := c.GetAll([]Key{testKey(1), testKey(2)})
	if !ok {
		t.Fatal("full residency must hit")
	}
	if es[0].Metrics.HPWL != 1 || es[1].Metrics.HPWL != 2 {
		t.Fatalf("entries out of order: %+v", es)
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Errorf("stats = %d/%d, want 1/1 (one counted lookup per GetAll)", h, m)
	}
}

// TestCacheLRUEviction: capacity is enforced and recency is respected — a
// recently read entry survives the insertion that evicts a colder one.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put(testKey(1), testEntry(1))
	c.Put(testKey(2), testEntry(2))
	if _, ok := c.Get(testKey(1)); !ok { // refresh 1; 2 is now coldest
		t.Fatal("entry 1 missing before eviction")
	}
	c.Put(testKey(3), testEntry(3))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(testKey(2)); ok {
		t.Error("coldest entry survived eviction")
	}
	if _, ok := c.Get(testKey(1)); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(testKey(3)); !ok {
		t.Error("newest entry was evicted")
	}
}

// TestCacheNilSafe: a nil cache (caching disabled) is inert for every
// method, so call sites need no guards.
func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	c.Put(testKey(1), testEntry(1))
	c.SetHooks(func() {}, func() {})
	if _, ok := c.Get(testKey(1)); ok {
		t.Error("nil cache hit")
	}
	if _, ok := c.GetAll([]Key{testKey(1)}); ok {
		t.Error("nil cache GetAll hit")
	}
	if c.Len() != 0 || c.Capacity() != 0 {
		t.Error("nil cache reports size")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("nil cache reports stats")
	}
	if NewCache(0) != nil {
		t.Error("NewCache(0) must disable caching")
	}
}

// TestCacheConcurrent hammers Put/Get/GetAll from many goroutines; the race
// detector is the assertion, plus counter conservation.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	const workers, iters = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := testKey(i % 32)
				if i%3 == 0 {
					c.Put(k, testEntry(i))
				} else {
					c.Get(k)
					c.GetAll([]Key{k, testKey((i + 1) % 32)})
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("Len %d exceeds capacity", c.Len())
	}
	h, m := c.Stats()
	if h+m == 0 {
		t.Error("no lookups counted")
	}
}

func TestResultsBoundedFIFO(t *testing.T) {
	r := NewResults(2)
	for i := 1; i <= 3; i++ {
		r.Put(&Outcome{Job: fmt.Sprintf("job-%d", i),
			Metrics: map[flow.ID]flow.Metrics{flow.Flow5: {HPWL: int64(i)}}})
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if _, ok := r.Get("job-1"); ok {
		t.Error("oldest outcome not evicted")
	}
	o, ok := r.Get("job-3")
	if !ok || o.Metrics[flow.Flow5].HPWL != 3 {
		t.Errorf("Get(job-3) = %+v, %v", o, ok)
	}
	// Replacing in place neither grows nor reorders.
	r.Put(&Outcome{Job: "job-3", CacheHit: true})
	if r.Len() != 2 {
		t.Errorf("replace grew the store to %d", r.Len())
	}
	if o, _ := r.Get("job-3"); !o.CacheHit {
		t.Error("replace did not take")
	}
}

func TestResultsDefaultCapacity(t *testing.T) {
	if NewResults(0).cap != DefaultResultCapacity {
		t.Error("zero capacity must select the default bound")
	}
}
