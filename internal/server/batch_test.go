package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestV1Aliases: every pre-versioning path answers identically under /v1/.
func TestV1Aliases(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, QueueDepth: 4})
	id := h.submit(JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}})
	h.waitState(id, StateDone)

	for _, path := range []string{"/jobs", "/v1/jobs", "/jobs/" + id, "/v1/jobs/" + id,
		"/jobs/" + id + "/result", "/v1/jobs/" + id + "/result"} {
		if code, _ := h.do("GET", path, nil); code != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, code)
		}
	}
	if code, _ := h.do("POST", "/v1/jobs", JobRequest{Testcase: "aes_300", Scale: 0.02}); code != http.StatusAccepted {
		t.Errorf("POST /v1/jobs: status %d, want 202", code)
	}
}

// TestBatchEndpointWithCache drives the full batch + cache scenario over
// HTTP: a cold solve populates the cache, then a batch of two identical
// instances is answered entirely from it, with /stats reporting the hits.
func TestBatchEndpointWithCache(t *testing.T) {
	h := newHarness(t, Options{Workers: 2, QueueDepth: 8, CacheEntries: 32, DefaultSolver: "greedy"})
	req := JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}}

	cold := h.submit(req)
	h.waitState(cold, StateDone)

	code, body := h.do("POST", "/v1/jobs:batch", map[string]any{"jobs": []JobRequest{req, req}})
	if code != http.StatusAccepted {
		t.Fatalf("batch: status %d, body %v", code, body)
	}
	var accepted int
	if err := json.Unmarshal(body["accepted"], &accepted); err != nil || accepted != 2 {
		t.Fatalf("accepted = %d (%v), want 2", accepted, err)
	}
	var slots []struct {
		Job *JobView `json:"job"`
	}
	if err := json.Unmarshal(body["jobs"], &slots); err != nil {
		t.Fatal(err)
	}
	for i, slot := range slots {
		if slot.Job == nil {
			t.Fatalf("slot %d carries no job", i)
		}
		if !slot.Job.CacheHit || slot.Job.State != StateDone {
			t.Errorf("slot %d: state %q cache_hit %v, want done from cache",
				i, slot.Job.State, slot.Job.CacheHit)
		}
		code, rbody := h.do("GET", "/v1/jobs/"+slot.Job.ID+"/result", nil)
		if code != http.StatusOK {
			t.Fatalf("slot %d result: status %d", i, code)
		}
		var hit bool
		if err := json.Unmarshal(rbody["cache_hit"], &hit); err != nil || !hit {
			t.Errorf("slot %d result cache_hit = %v (%v)", i, hit, err)
		}
	}

	_, sbody := h.do("GET", "/stats", nil)
	var cache struct {
		Enabled bool  `json:"enabled"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
	}
	if err := json.Unmarshal(sbody["cache"], &cache); err != nil {
		t.Fatalf("stats cache block: %v", err)
	}
	if !cache.Enabled || cache.Hits != 2 || cache.Misses != 1 {
		t.Errorf("stats cache = %+v, want enabled with 2 hits / 1 miss", cache)
	}
	var backends []struct {
		Name     string `json:"name"`
		Capacity int    `json:"capacity"`
	}
	if err := json.Unmarshal(sbody["backends"], &backends); err != nil || len(backends) != 1 {
		t.Fatalf("stats backends = %v (%v), want one lane", backends, err)
	}

	// The private registry carries the canonical cache series.
	out := h.scrape()
	for _, series := range []string{"mth_cache_hits_total 2", "mth_cache_misses_total 1"} {
		if !bytes.Contains([]byte(out), []byte(series)) {
			t.Errorf("metrics exposition missing %q", series)
		}
	}
}

// TestCacheControlHeader: the standard Cache-Control request header maps
// onto the job's cache directive.
func TestCacheControlHeader(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, QueueDepth: 4, CacheEntries: 16, DefaultSolver: "greedy"})
	req := JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}}

	id := h.submit(req)
	h.waitState(id, StateDone)

	// no-cache forces a fresh solve even though the entry is resident.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", h.web.URL+"/v1/jobs", &buf)
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Cache-Control", "no-cache")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("no-cache submit: status %d", resp.StatusCode)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "MISS" {
		t.Errorf("X-Cache = %q under no-cache, want MISS", xc)
	}

	// A plain resubmission hits and says so in the header.
	buf.Reset()
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(h.web.URL+"/v1/jobs", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if xc := resp2.Header.Get("X-Cache"); xc != "HIT" {
		t.Errorf("X-Cache = %q on resident resubmission, want HIT", xc)
	}
}
