package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"mthplace/internal/flow"
)

// TestStatsLatencyAfterJobs submits real jobs and asserts /stats reports
// populated, monotone latency percentiles and consistent worker/queue
// gauges once they complete. (TestStatsEndpoint covers the in-flight
// gauges with a stubbed executor; this test exercises the real path.)
func TestStatsLatencyAfterJobs(t *testing.T) {
	h := newHarness(t, Options{Workers: 2, QueueDepth: 8})

	const n = 5
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, h.submit(JobRequest{Testcase: "aes_300", Scale: 0.01, Flows: []int{1, 5}}))
	}
	for _, id := range ids {
		if st := h.waitState(id, StateDone); st != StateDone {
			t.Fatalf("job %s finished in state %q", id, st)
		}
	}

	code, body := h.do("GET", "/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	var workers, busy, depth int
	var util float64
	must := func(key string, v any) {
		t.Helper()
		raw, ok := body[key]
		if !ok {
			t.Fatalf("/stats missing %q: %v", key, body)
		}
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("%q: %v", key, err)
		}
	}
	must("workers", &workers)
	must("busy_workers", &busy)
	must("queue_depth", &depth)
	must("worker_utilization", &util)
	if workers != 2 {
		t.Errorf("workers = %d, want 2", workers)
	}
	if busy != 0 || depth != 0 {
		t.Errorf("idle server reports busy=%d depth=%d", busy, depth)
	}
	if util < 0 || util > 1 {
		t.Errorf("utilization %v out of [0,1]", util)
	}

	var perFlow map[string]FlowLatency
	must("flow_latency", &perFlow)
	for _, id := range []flow.ID{flow.Flow1, flow.Flow5} {
		fl, ok := perFlow[id.String()]
		if !ok {
			t.Fatalf("flow_latency missing %v after %d completions: %v", id, n, perFlow)
		}
		if fl.Count != n {
			t.Errorf("%v: Count = %d, want %d", id, fl.Count, n)
		}
		if fl.P50ms <= 0 {
			t.Errorf("%v: P50 not populated: %+v", id, fl)
		}
		if !(fl.P50ms <= fl.P90ms && fl.P90ms <= fl.P99ms) {
			t.Errorf("%v: percentiles not monotone: %+v", id, fl)
		}
	}

	var jobs map[string]int
	must("jobs", &jobs)
	if jobs[string(StateDone)] != n {
		t.Errorf("jobs[done] = %d, want %d (all: %v)", jobs[string(StateDone)], n, jobs)
	}
}
