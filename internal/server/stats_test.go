package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"mthplace/internal/flow"
)

// TestStatsPercentiles: known latency samples produce the documented
// nearest-rank percentiles, monotone p50 ≤ p90 ≤ p99.
func TestStatsPercentiles(t *testing.T) {
	st := newStats(2)
	for i := 1; i <= 100; i++ {
		st.recordFlow(flow.Flow5, time.Duration(i)*time.Millisecond)
	}
	_, _, perFlow := st.snapshot()
	fl, ok := perFlow[flow.Flow5.String()]
	if !ok {
		t.Fatalf("no latency entry for %v: %v", flow.Flow5, perFlow)
	}
	if fl.Count != 100 {
		t.Errorf("Count = %d, want 100", fl.Count)
	}
	if fl.P50ms != 50 || fl.P90ms != 90 || fl.P99ms != 99 {
		t.Errorf("percentiles = %v/%v/%v, want 50/90/99", fl.P50ms, fl.P90ms, fl.P99ms)
	}
	if !(fl.P50ms <= fl.P90ms && fl.P90ms <= fl.P99ms) {
		t.Errorf("percentiles not monotone: %+v", fl)
	}
}

// TestStatsRingBound: the ring retains only the newest maxLatencySamples
// but keeps counting, so Count reflects lifetime completions while the
// percentiles reflect recent behaviour.
func TestStatsRingBound(t *testing.T) {
	st := newStats(1)
	// Old slow samples that should age out entirely...
	for i := 0; i < maxLatencySamples; i++ {
		st.recordFlow(flow.Flow2, time.Hour)
	}
	// ...displaced by fast recent ones.
	for i := 0; i < maxLatencySamples; i++ {
		st.recordFlow(flow.Flow2, time.Millisecond)
	}
	_, _, perFlow := st.snapshot()
	fl := perFlow[flow.Flow2.String()]
	if fl.Count != 2*maxLatencySamples {
		t.Errorf("Count = %d, want %d", fl.Count, 2*maxLatencySamples)
	}
	if fl.P99ms != 1 {
		t.Errorf("P99 = %vms: old samples still retained", fl.P99ms)
	}
}

// TestStatsLatencyAfterJobs submits real jobs and asserts /stats reports
// populated, monotone latency percentiles and consistent worker/queue
// gauges once they complete. (TestStatsEndpoint covers the in-flight
// gauges with a stubbed executor; this test exercises the real path.)
func TestStatsLatencyAfterJobs(t *testing.T) {
	h := newHarness(t, Options{Workers: 2, QueueDepth: 8})

	const n = 5
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, h.submit(JobRequest{Testcase: "aes_300", Scale: 0.01, Flows: []int{1, 5}}))
	}
	for _, id := range ids {
		if st := h.waitState(id, StateDone); st != StateDone {
			t.Fatalf("job %s finished in state %q", id, st)
		}
	}

	code, body := h.do("GET", "/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	var workers, busy, depth int
	var util float64
	must := func(key string, v any) {
		t.Helper()
		raw, ok := body[key]
		if !ok {
			t.Fatalf("/stats missing %q: %v", key, body)
		}
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("%q: %v", key, err)
		}
	}
	must("workers", &workers)
	must("busy_workers", &busy)
	must("queue_depth", &depth)
	must("worker_utilization", &util)
	if workers != 2 {
		t.Errorf("workers = %d, want 2", workers)
	}
	if busy != 0 || depth != 0 {
		t.Errorf("idle server reports busy=%d depth=%d", busy, depth)
	}
	if util < 0 || util > 1 {
		t.Errorf("utilization %v out of [0,1]", util)
	}

	var perFlow map[string]FlowLatency
	must("flow_latency", &perFlow)
	for _, id := range []flow.ID{flow.Flow1, flow.Flow5} {
		fl, ok := perFlow[id.String()]
		if !ok {
			t.Fatalf("flow_latency missing %v after %d completions: %v", id, n, perFlow)
		}
		if fl.Count != n {
			t.Errorf("%v: Count = %d, want %d", id, fl.Count, n)
		}
		if fl.P50ms <= 0 {
			t.Errorf("%v: P50 not populated: %+v", id, fl)
		}
		if !(fl.P50ms <= fl.P90ms && fl.P90ms <= fl.P99ms) {
			t.Errorf("%v: percentiles not monotone: %+v", id, fl)
		}
	}

	var jobs map[string]int
	must("jobs", &jobs)
	if jobs[string(StateDone)] != n {
		t.Errorf("jobs[done] = %d, want %d (all: %v)", jobs[string(StateDone)], n, jobs)
	}
}
