// Package milp implements a branch-and-bound solver for mixed
// binary-integer linear programs on top of the internal/lp simplex. It is
// the CPLEX stand-in used to solve the paper's row assignment ILP
// (Eqs. (1)–(5)) exactly.
//
// The solver does best-first search ordered by LP relaxation bound, branches
// on the most fractional binary (optionally weighted by caller-supplied
// priorities — the RAP model prioritises the row indicator variables y_r),
// accepts a warm-start incumbent, and runs a rounding heuristic at every
// node so good feasible solutions appear early and prune aggressively.
package milp

import (
	"container/heap"
	"context"
	"math"
	"time"

	"mthplace/internal/lp"
	"mthplace/internal/obs"
)

// Status reports the outcome of a MILP solve.
type Status int8

const (
	// Optimal: proven optimal within the gap tolerance.
	Optimal Status = iota
	// Feasible: search limit hit with an incumbent in hand.
	Feasible
	// Infeasible: no integer-feasible solution exists.
	Infeasible
	// Limit: search limit hit with no incumbent.
	Limit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Limit:
		return "limit"
	default:
		return "unknown"
	}
}

// Problem couples an LP with the set of variables required to be binary.
type Problem struct {
	// LP is the relaxation; the solver mutates its variable bounds during
	// the search and restores them before returning.
	LP *lp.Problem
	// Binary lists variable indices constrained to {0,1}.
	Binary []int
	// Priority optionally biases branching: higher values branch first.
	// Indexed like LP variables; nil means uniform.
	Priority []float64
}

// Options tune the search.
type Options struct {
	// MaxNodes bounds the number of explored nodes (0 = 200000).
	MaxNodes int
	// TimeLimit bounds wall-clock time (0 = none). The result remains
	// deterministic unless the limit triggers.
	TimeLimit time.Duration
	// RelGap stops when (incumbent − bound)/max(1,|incumbent|) is below
	// this (0 = 1e-6).
	RelGap float64
	// IntTol is the integrality tolerance (0 = 1e-6).
	IntTol float64
	// LP tunes the inner simplex.
	LP lp.Options
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.RelGap <= 0 {
		o.RelGap = 1e-6
	}
	if o.IntTol <= 0 {
		o.IntTol = 1e-6
	}
	return o
}

// StopReason records why the search ended before exhausting the tree; it
// distinguishes the solver's own budgets (nodes, wall-clock) from the
// caller's context so degradation policies can report honest provenance.
type StopReason int8

const (
	// StopNone: the tree was exhausted (or the gap closed); nothing was cut
	// short.
	StopNone StopReason = iota
	// StopNodeLimit: Options.MaxNodes ran out.
	StopNodeLimit
	// StopTimeLimit: Options.TimeLimit expired.
	StopTimeLimit
	// StopContext: the caller's context was canceled or its deadline
	// expired mid-search.
	StopContext
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopNone:
		return "none"
	case StopNodeLimit:
		return "node-limit"
	case StopTimeLimit:
		return "time-limit"
	case StopContext:
		return "context"
	default:
		return "unknown"
	}
}

// Result of a solve.
type Result struct {
	Status Status
	// Stop explains an early exit; StopNone when the search ran to proof.
	Stop StopReason
	// X is the incumbent solution (valid for Optimal/Feasible).
	X []float64
	// Obj is the incumbent objective.
	Obj float64
	// Bound is the best proven lower bound on the optimum. At a limit it is
	// the tightest bound among the still-open nodes; -Inf means the search
	// stopped before any node produced a usable bound.
	Bound float64
	// Nodes explored.
	Nodes int
	// LPIters totals simplex pivots across all node solves.
	LPIters int
}

// Gap returns the relative optimality gap of the result: 0 at proven
// optimality, +Inf when there is no incumbent or no finite bound to measure
// against (an anytime caller should then report the gap as unknown).
func (r *Result) Gap() float64 {
	if len(r.X) == 0 || math.IsInf(r.Bound, -1) {
		return math.Inf(1)
	}
	return (r.Obj - r.Bound) / math.Max(1, math.Abs(r.Obj))
}

type fix struct {
	v   int
	val float64
}

type node struct {
	bound float64
	fixes []fix
	depth int
	seq   int // tiebreak for determinism
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	if h[i].depth != h[j].depth {
		return h[i].depth > h[j].depth // deeper first: plunge toward integrality
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any     { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }

// Solve runs branch and bound. warmX, if non-nil, must be an
// integer-feasible solution used as the initial incumbent. Cancellation is
// checked once per node, so a canceled context stops the search within one
// LP relaxation solve; the result then reports the search as limit-hit
// (Feasible with an incumbent, Limit without) and the caller is expected
// to consult ctx.Err for the cause.
func Solve(ctx context.Context, p *Problem, warmX []float64, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{Status: Limit, Bound: math.Inf(-1), Obj: math.Inf(1)}
	start := time.Now()
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}

	// Observability (read-only: the search is identical with or without
	// consumers). Incumbent improvements stream to the progress sink and as
	// trace instant events; the whole search is one span.
	sink := obs.Progress(ctx)
	tracer := obs.TracerFrom(ctx)
	span := obs.StartSpan(ctx, "milp.bnb")
	defer func() {
		span.SetArg("status", res.Status.String())
		span.SetArg("nodes", res.Nodes)
		span.SetArg("lp_iters", res.LPIters)
		span.End()
	}()
	emitIncumbent := func(h *nodeHeap) {
		if sink == nil && tracer == nil {
			return
		}
		gap := -1.0
		if h.Len() > 0 && !math.IsInf((*h)[0].bound, -1) {
			if g := (res.Obj - (*h)[0].bound) / math.Max(1, math.Abs(res.Obj)); g >= 0 {
				gap = g
			} else {
				gap = 0
			}
		}
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		if sink != nil {
			sink(obs.Event{Source: "milp", Kind: "incumbent",
				Objective: res.Obj, Gap: gap, Nodes: res.Nodes, ElapsedMS: elapsed})
		}
		span.Instant("milp.incumbent", map[string]any{
			"objective": res.Obj, "gap": gap, "nodes": res.Nodes,
		})
	}

	// Save original bounds to restore at the end.
	savedLo := make([]float64, len(p.Binary))
	savedHi := make([]float64, len(p.Binary))
	binIdx := make(map[int]int, len(p.Binary))
	for i, v := range p.Binary {
		savedLo[i], savedHi[i] = p.LP.Bounds(v)
		binIdx[v] = i
	}
	defer func() {
		for i, v := range p.Binary {
			p.LP.SetBounds(v, savedLo[i], savedHi[i])
		}
	}()

	h := &nodeHeap{{bound: math.Inf(-1)}}
	seq := 1

	if warmX != nil && p.LP.CheckFeasible(warmX, 1e-6) && integral(p, warmX, opt.IntTol) {
		res.X = append([]float64(nil), warmX...)
		res.Obj = p.LP.Objective(warmX)
		res.Status = Feasible
		emitIncumbent(h)
	}

	for h.Len() > 0 {
		if res.Nodes >= opt.MaxNodes {
			res.Stop = StopNodeLimit
			break
		}
		if ctx.Err() != nil {
			res.Stop = StopContext
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Stop = StopTimeLimit
			break
		}
		nd := heap.Pop(h).(*node)
		if len(res.X) > 0 && nd.bound >= res.Obj-gapAbs(opt, res.Obj) {
			// Bound-dominated; since the heap is bound-ordered, all
			// remaining nodes are dominated too.
			res.Status = Optimal
			res.Bound = res.Obj
			return res
		}
		res.Nodes++

		// Apply node fixes.
		for _, f := range nd.fixes {
			p.LP.SetBounds(f.v, f.val, f.val)
		}
		sol := p.LP.Solve(opt.LP)
		res.LPIters += sol.Iters
		// Restore fixes.
		for _, f := range nd.fixes {
			i := binIdx[f.v]
			p.LP.SetBounds(f.v, savedLo[i], savedHi[i])
		}

		if sol.Status == lp.Infeasible {
			continue
		}
		if sol.Status == lp.Unbounded {
			// A bounded-binary MILP relaxation can only be unbounded through
			// continuous vars; treat as no useful bound and branch blindly.
			sol.Obj = math.Inf(-1)
		}
		if len(res.X) > 0 && sol.Obj >= res.Obj-gapAbs(opt, res.Obj) {
			continue // dominated
		}

		br := pickBranch(p, sol.X, opt.IntTol)
		if br < 0 {
			// Integer feasible.
			if sol.Obj < res.Obj {
				res.X = append(res.X[:0], sol.X...)
				res.Obj = sol.Obj
				res.Status = Feasible
				emitIncumbent(h)
			}
			continue
		}

		// Rounding heuristic: snap binaries, keep if feasible.
		if cand := roundHeuristic(p, sol.X, opt.IntTol); cand != nil {
			obj := p.LP.Objective(cand)
			if obj < res.Obj {
				res.X = append(res.X[:0], cand...)
				res.Obj = obj
				res.Status = Feasible
				emitIncumbent(h)
			}
		}

		for _, val := range [2]float64{roundAway(sol.X[br]), roundToward(sol.X[br])} {
			child := &node{
				bound: sol.Obj,
				fixes: append(append([]fix(nil), nd.fixes...), fix{br, val}),
				depth: nd.depth + 1,
				seq:   seq,
			}
			seq++
			heap.Push(h, child)
		}
	}

	if h.Len() == 0 {
		// Search space exhausted.
		if len(res.X) > 0 {
			res.Status = Optimal
			res.Bound = res.Obj
		} else {
			res.Status = Infeasible
		}
		return res
	}
	// Limit hit: the heap minimum is the tightest valid lower bound on the
	// optimum — every open subtree's optimum is at least its node's bound,
	// and closed subtrees are dominated by the incumbent. -Inf (the root's
	// placeholder bound) means no node was solved before the limit, so the
	// gap is honestly unknown.
	res.Bound = (*h)[0].bound
	if len(res.X) > 0 {
		res.Status = Feasible
	}
	return res
}

func gapAbs(opt Options, incumbent float64) float64 {
	return opt.RelGap * math.Max(1, math.Abs(incumbent))
}

func integral(p *Problem, x []float64, tol float64) bool {
	for _, v := range p.Binary {
		if frac(x[v]) > tol {
			return false
		}
	}
	return true
}

func frac(v float64) float64 {
	return math.Abs(v - math.Round(v))
}

// pickBranch returns the binary variable to branch on: the one with the
// most fractional value, scaled by priority; -1 if all are integral.
func pickBranch(p *Problem, x []float64, tol float64) int {
	best, bestScore := -1, tol
	for _, v := range p.Binary {
		f := frac(x[v])
		if f <= tol {
			continue
		}
		score := f
		if p.Priority != nil && v < len(p.Priority) {
			score *= 1 + p.Priority[v]
		}
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

func roundAway(v float64) float64 {
	if v >= 0.5 {
		return 1
	}
	return 0
}

func roundToward(v float64) float64 {
	if v >= 0.5 {
		return 0
	}
	return 1
}

// roundHeuristic snaps all binaries of x to the nearest integer and returns
// the result when it is feasible; nil otherwise.
func roundHeuristic(p *Problem, x []float64, tol float64) []float64 {
	out := append([]float64(nil), x...)
	changed := false
	for _, v := range p.Binary {
		r := math.Round(out[v])
		if math.Abs(out[v]-r) > tol {
			changed = true
		}
		out[v] = r
	}
	if !changed {
		return nil
	}
	if !p.LP.CheckFeasible(out, 1e-6) {
		return nil
	}
	return out
}
