package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mthplace/internal/lp"
)

const eps = 1e-5

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(b)) }

// knapsack: max value s.t. weight <= cap == min -value.
func knapsackProblem(values, weights []float64, capacity float64) *Problem {
	p := lp.NewProblem()
	bins := make([]int, len(values))
	c := p.AddConstraint(lp.LE, capacity)
	for i := range values {
		v := p.AddVar(-values[i], 0, 1)
		p.AddTerm(c, v, weights[i])
		bins[i] = v
	}
	return &Problem{LP: p, Binary: bins}
}

func bruteKnapsack(values, weights []float64, capacity float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var val, wt float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				val += values[i]
				wt += weights[i]
			}
		}
		if wt <= capacity && val > best {
			best = val
		}
	}
	return best
}

func TestKnapsackExact(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2, 6}
	weights := []float64{3, 4, 2, 3, 1, 2}
	capacity := 7.0
	p := knapsackProblem(values, weights, capacity)
	r := Solve(context.Background(), p, nil, Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	want := bruteKnapsack(values, weights, capacity)
	if !approx(-r.Obj, want) {
		t.Errorf("value = %f, want %f", -r.Obj, want)
	}
	for _, v := range p.Binary {
		f := math.Abs(r.X[v] - math.Round(r.X[v]))
		if f > 1e-6 {
			t.Errorf("x[%d] = %f not integral", v, r.X[v])
		}
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVar(1, 0, 1)
	y := p.AddVar(1, 0, 1)
	c := p.AddConstraint(EQish(), 3) // x + y = 3 impossible for binaries
	p.AddTerm(c, x, 1)
	p.AddTerm(c, y, 1)
	r := Solve(context.Background(), &Problem{LP: p, Binary: []int{x, y}}, nil, Options{})
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

// EQish exists to keep the lp.EQ import obvious at the call site.
func EQish() lp.Sense { return lp.EQ }

func TestFractionalLPIntegerGap(t *testing.T) {
	// min -(x+y) s.t. 2x + 2y <= 3: LP opt 1.5 fractional; MILP opt 1.
	p := lp.NewProblem()
	x := p.AddVar(-1, 0, 1)
	y := p.AddVar(-1, 0, 1)
	c := p.AddConstraint(lp.LE, 3)
	p.AddTerm(c, x, 2)
	p.AddTerm(c, y, 2)
	r := Solve(context.Background(), &Problem{LP: p, Binary: []int{x, y}}, nil, Options{})
	if r.Status != Optimal || !approx(r.Obj, -1) {
		t.Fatalf("r = %+v", r)
	}
}

func TestWarmStartAcceptedAndImproved(t *testing.T) {
	values := []float64{5, 4, 3}
	weights := []float64{2, 3, 1}
	p := knapsackProblem(values, weights, 3)
	// Warm start: take only item 2 (value 3).
	warm := []float64{0, 0, 1}
	r := Solve(context.Background(), p, warm, Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	want := bruteKnapsack(values, weights, 3)
	if !approx(-r.Obj, want) {
		t.Errorf("value = %f, want %f", -r.Obj, want)
	}
}

func TestWarmStartInfeasibleIgnored(t *testing.T) {
	p := knapsackProblem([]float64{1}, []float64{2}, 1)
	warm := []float64{1} // violates the knapsack
	r := Solve(context.Background(), p, warm, Options{})
	if r.Status != Optimal || !approx(r.Obj, 0) {
		t.Fatalf("r = %+v", r)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 14
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = 1 + rng.Float64()
		weights[i] = 1 + rng.Float64()
	}
	p := knapsackProblem(values, weights, 5)
	r := Solve(context.Background(), p, nil, Options{MaxNodes: 1})
	if r.Status != Feasible && r.Status != Optimal && r.Status != Limit {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Nodes > 1 {
		t.Errorf("explored %d nodes with MaxNodes=1", r.Nodes)
	}
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	p := knapsackProblem([]float64{3, 2}, []float64{2, 2}, 2)
	lo0, hi0 := p.LP.Bounds(p.Binary[0])
	Solve(context.Background(), p, nil, Options{})
	lo1, hi1 := p.LP.Bounds(p.Binary[0])
	if lo0 != lo1 || hi0 != hi1 {
		t.Error("solver leaked bound changes")
	}
	// Solving twice gives identical results (determinism + clean state).
	a := Solve(context.Background(), p, nil, Options{})
	b := Solve(context.Background(), p, nil, Options{})
	if a.Obj != b.Obj || a.Status != b.Status {
		t.Error("repeat solve differs")
	}
}

func TestAssignmentWithCardinality(t *testing.T) {
	// Miniature of the RAP structure: 3 clusters, 4 rows, row indicators
	// with a cardinality constraint sum(y) = 2, linking via capacity.
	cost := [3][4]float64{
		{1, 5, 9, 13},
		{6, 2, 7, 12},
		{11, 8, 3, 4},
	}
	w := []float64{2, 2, 2} // cluster widths
	capRow := 4.0
	p := lp.NewProblem()
	var x [3][4]int
	for c := 0; c < 3; c++ {
		for r := 0; r < 4; r++ {
			x[c][r] = p.AddVar(cost[c][r], 0, 1)
		}
	}
	y := make([]int, 4)
	for r := 0; r < 4; r++ {
		y[r] = p.AddVar(0, 0, 1)
	}
	var bins []int
	for c := 0; c < 3; c++ {
		row := p.AddConstraint(lp.EQ, 1)
		for r := 0; r < 4; r++ {
			p.AddTerm(row, x[c][r], 1)
			bins = append(bins, x[c][r])
		}
	}
	for r := 0; r < 4; r++ {
		row := p.AddConstraint(lp.LE, 0)
		for c := 0; c < 3; c++ {
			p.AddTerm(row, x[c][r], w[c])
		}
		p.AddTerm(row, y[r], -capRow)
		bins = append(bins, y[r])
	}
	card := p.AddConstraint(lp.EQ, 2)
	for r := 0; r < 4; r++ {
		p.AddTerm(card, y[r], 1)
	}
	res := Solve(context.Background(), &Problem{LP: p, Binary: bins}, nil, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Brute force over row subsets of size 2 and cluster assignments,
	// respecting capacity 4 (at most 2 clusters per row).
	best := math.Inf(1)
	for r1 := 0; r1 < 4; r1++ {
		for r2 := r1 + 1; r2 < 4; r2++ {
			rows := []int{r1, r2}
			for a0 := 0; a0 < 2; a0++ {
				for a1 := 0; a1 < 2; a1++ {
					for a2 := 0; a2 < 2; a2++ {
						cnt := [2]int{}
						cnt[a0]++
						cnt[a1]++
						cnt[a2]++
						if cnt[0] > 2 || cnt[1] > 2 {
							continue
						}
						tot := cost[0][rows[a0]] + cost[1][rows[a1]] + cost[2][rows[a2]]
						best = math.Min(best, tot)
					}
				}
			}
		}
	}
	if !approx(res.Obj, best) {
		t.Errorf("obj = %f, want %f", res.Obj, best)
	}
	// Row indicators must be consistent: any used row has y=1.
	for r := 0; r < 4; r++ {
		used := false
		for c := 0; c < 3; c++ {
			if res.X[x[c][r]] > 0.5 {
				used = true
			}
		}
		if used && res.X[y[r]] < 0.5 {
			t.Errorf("row %d used without indicator", r)
		}
	}
}

// Property: branch and bound equals brute force on random small knapsacks.
func TestKnapsackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = math.Round(rng.Float64()*20) + 1
			weights[i] = math.Round(rng.Float64()*9) + 1
		}
		capacity := math.Round(rng.Float64() * float64(n) * 3)
		p := knapsackProblem(values, weights, capacity)
		r := Solve(context.Background(), p, nil, Options{})
		if r.Status != Optimal {
			return false
		}
		return approx(-r.Obj, bruteKnapsack(values, weights, capacity))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPriorityBranching(t *testing.T) {
	// Same problem with and without priority must agree on the optimum.
	values := []float64{10, 13, 7, 8}
	weights := []float64{3, 4, 2, 3}
	p := knapsackProblem(values, weights, 6)
	base := Solve(context.Background(), p, nil, Options{})
	pri := make([]float64, p.LP.NumVars())
	for i := range pri {
		pri[i] = float64(i)
	}
	p.Priority = pri
	withPri := Solve(context.Background(), p, nil, Options{})
	if !approx(base.Obj, withPri.Obj) {
		t.Errorf("priority branching changed the optimum: %f vs %f", base.Obj, withPri.Obj)
	}
}

func TestGapAndStatusString(t *testing.T) {
	p := knapsackProblem([]float64{2}, []float64{1}, 1)
	r := Solve(context.Background(), p, nil, Options{})
	if g := r.Gap(); g > 1e-6 {
		t.Errorf("gap = %f at optimality", g)
	}
	empty := &Result{}
	if !math.IsInf(empty.Gap(), 1) {
		t.Error("gap without incumbent must be +inf")
	}
	for _, s := range []Status{Optimal, Feasible, Infeasible, Limit, Status(9)} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
}
