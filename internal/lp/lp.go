// Package lp implements a linear-programming solver: a bounded-variable
// two-phase revised simplex with a dense explicitly-maintained basis inverse
// and sparse constraint columns. It is the LP engine underneath the
// branch-and-bound MILP solver that stands in for CPLEX in this
// reproduction.
//
// Problems are stated as
//
//	minimize    cᵀx
//	subject to  aᵢᵀx {≤,=,≥} bᵢ       for each constraint i
//	            lⱼ ≤ xⱼ ≤ uⱼ          for each variable j
//
// Variable bounds are handled inside the simplex (nonbasic variables rest at
// either bound), so binary variables cost nothing extra; the MILP layer
// fixes binaries by collapsing their bounds.
package lp

import (
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int8

const (
	// LE is aᵀx ≤ b.
	LE Sense = iota
	// GE is aᵀx ≥ b.
	GE
	// EQ is aᵀx = b.
	EQ
)

// Status reports the outcome of a solve.
type Status int8

const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective decreases without limit.
	Unbounded
	// IterLimit: the iteration budget was exhausted.
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int8(s))
	}
}

type nz struct {
	row int32
	val float64
}

// Problem is a mutable LP under construction. Create variables with AddVar,
// constraints with AddConstraint/AddTerm, then call Solve. A Problem may be
// solved repeatedly with different variable bounds (SetBounds); this is how
// the MILP layer explores branch-and-bound nodes.
type Problem struct {
	cost  []float64
	lower []float64
	upper []float64
	cols  [][]nz

	rhs   []float64
	sense []Sense
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return len(p.cost) }

// NumConstraints returns the constraint count.
func (p *Problem) NumConstraints() int { return len(p.rhs) }

// AddVar adds a variable with the given objective cost and bounds, returning
// its index.
func (p *Problem) AddVar(cost, lower, upper float64) int {
	p.cost = append(p.cost, cost)
	p.lower = append(p.lower, lower)
	p.upper = append(p.upper, upper)
	p.cols = append(p.cols, nil)
	return len(p.cost) - 1
}

// AddConstraint adds an empty constraint aᵀx sense rhs and returns its
// index; populate it with AddTerm.
func (p *Problem) AddConstraint(s Sense, rhs float64) int {
	p.rhs = append(p.rhs, rhs)
	p.sense = append(p.sense, s)
	return len(p.rhs) - 1
}

// AddTerm sets the coefficient of variable v in constraint row to coef
// (accumulating when called twice for the same pair).
func (p *Problem) AddTerm(row, v int, coef float64) {
	if coef == 0 {
		return
	}
	col := p.cols[v]
	for i := range col {
		if col[i].row == int32(row) {
			col[i].val += coef
			return
		}
	}
	p.cols[v] = append(col, nz{int32(row), coef})
}

// SetBounds changes the bounds of a variable (used by branch and bound).
func (p *Problem) SetBounds(v int, lower, upper float64) {
	p.lower[v] = lower
	p.upper[v] = upper
}

// Bounds returns the current bounds of a variable.
func (p *Problem) Bounds(v int) (lower, upper float64) {
	return p.lower[v], p.upper[v]
}

// CheckFeasible reports whether x satisfies all constraints and bounds
// within tol. Used by MILP rounding heuristics.
func (p *Problem) CheckFeasible(x []float64, tol float64) bool {
	if len(x) != len(p.cost) {
		return false
	}
	for v := range p.cost {
		if x[v] < p.lower[v]-tol || x[v] > p.upper[v]+tol {
			return false
		}
	}
	lhs := make([]float64, len(p.rhs))
	for v, col := range p.cols {
		if x[v] == 0 {
			continue
		}
		for _, e := range col {
			lhs[e.row] += e.val * x[v]
		}
	}
	for i := range p.rhs {
		switch p.sense[i] {
		case LE:
			if lhs[i] > p.rhs[i]+tol {
				return false
			}
		case GE:
			if lhs[i] < p.rhs[i]-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs[i]-p.rhs[i]) > tol {
				return false
			}
		}
	}
	return true
}

// Objective evaluates cᵀx.
func (p *Problem) Objective(x []float64) float64 {
	var obj float64
	for v := range p.cost {
		obj += p.cost[v] * x[v]
	}
	return obj
}

// Options tune the solver.
type Options struct {
	// MaxIters bounds total simplex pivots (both phases); 0 means
	// automatic (50·(m+n)+1000).
	MaxIters int
	// Tol is the feasibility/optimality tolerance (default 1e-7).
	Tol float64
	// RefactorEvery rebuilds the basis inverse after this many pivots
	// (default 400).
	RefactorEvery int
}

func (o Options) withDefaults(m, n int) Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 50*(m+n) + 1000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.RefactorEvery <= 0 {
		o.RefactorEvery = 400
	}
	return o
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	// X holds the structural variable values (valid for Optimal and
	// IterLimit).
	X []float64
	// Obj is the objective value cᵀX.
	Obj float64
	// Iters is the total pivot count across both phases.
	Iters int
}

type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
)

// simplex is one solver instance over the expanded (structural + slack +
// artificial) variable set.
type simplex struct {
	m, n      int // constraints, total columns
	nStruct   int
	nReal     int // structural + slack (everything but artificials)
	cols      [][]nz
	cost      []float64 // phase-2 costs
	lower     []float64
	upper     []float64
	b         []float64
	binv      [][]float64
	basis     []int
	status    []varStatus
	xB        []float64
	opt       Options
	iters     int
	sincePiv  int
	blandLeft int // pivots remaining in Bland mode (anti-cycling)
	degenRun  int // consecutive degenerate pivots

	// scratch buffers reused across iterations to avoid per-pivot
	// allocations (the hot loops are O(m) and O(m²)).
	yBuf, wBuf []float64
}

// Solve optimises the problem. The problem itself is not modified.
func (p *Problem) Solve(opt Options) *Solution {
	m := len(p.rhs)
	nStruct := len(p.cost)
	s := &simplex{m: m, nStruct: nStruct}
	s.opt = opt.withDefaults(m, nStruct)

	// Copy structural columns and bounds; sanity-check bounds.
	s.cols = make([][]nz, 0, nStruct+2*m)
	s.cost = append([]float64(nil), p.cost...)
	s.lower = append([]float64(nil), p.lower...)
	s.upper = append([]float64(nil), p.upper...)
	for v := 0; v < nStruct; v++ {
		s.cols = append(s.cols, p.cols[v])
		if s.lower[v] > s.upper[v]+1e-12 {
			return &Solution{Status: Infeasible, X: make([]float64, nStruct)}
		}
	}
	s.b = append([]float64(nil), p.rhs...)

	// Slack variables.
	slack := make([]int, m)
	for i := 0; i < m; i++ {
		switch p.sense[i] {
		case LE:
			slack[i] = s.addCol(i, 1, 0, math.Inf(1), 0)
		case GE:
			slack[i] = s.addCol(i, -1, 0, math.Inf(1), 0)
		case EQ:
			slack[i] = -1
		}
	}
	s.nReal = len(s.cols)

	// Residual of the all-at-lower-bound point decides the crash basis.
	resid := append([]float64(nil), s.b...)
	for v := 0; v < s.nReal; v++ {
		x := s.startValue(v)
		if x == 0 {
			continue
		}
		for _, e := range s.cols[v] {
			resid[e.row] -= e.val * x
		}
	}

	// Crash basis: a row whose slack can absorb the residual (LE with
	// resid ≥ 0, GE with resid ≤ 0) starts with its slack basic — no
	// artificial, no phase-1 work. Remaining rows get a signed artificial;
	// the resulting basis is ±1 diagonal and its inverse is the same
	// diagonal.
	signs := make([]float64, m)
	s.basis = make([]int, m)
	for i := 0; i < m; i++ {
		if slack[i] >= 0 {
			coef := s.cols[slack[i]][0].val // +1 (LE) or -1 (GE)
			if coef*resid[i] >= 0 {
				signs[i] = coef
				s.basis[i] = slack[i]
				continue
			}
		}
		signs[i] = 1
		if resid[i] < 0 {
			signs[i] = -1
		}
		s.basis[i] = s.addCol(i, signs[i], 0, math.Inf(1), 0)
	}
	s.n = len(s.cols)
	phase1 := make([]float64, s.n)
	for v := s.nReal; v < s.n; v++ {
		phase1[v] = 1
	}

	s.status = make([]varStatus, s.n)
	for v := 0; v < s.n; v++ {
		s.status[v] = atLower
		if !math.IsInf(s.upper[v], 1) && s.lower[v] == math.Inf(-1) {
			s.status[v] = atUpper
		}
	}
	for _, v := range s.basis {
		s.status[v] = basic
	}
	s.binv = identity(m)
	s.xB = make([]float64, m)
	for i := 0; i < m; i++ {
		s.binv[i][i] = signs[i]
		s.xB[i] = math.Abs(resid[i])
	}

	// Phase 1: drive artificial infeasibility to zero.
	st := s.run(phase1)
	if st == IterLimit {
		return &Solution{Status: IterLimit, X: s.extract(), Obj: s.objective(), Iters: s.iters}
	}
	if s.phaseObjective(phase1) > s.opt.Tol*10 {
		return &Solution{Status: Infeasible, X: s.extract(), Iters: s.iters}
	}
	// Freeze artificials at zero for phase 2.
	for v := s.nReal; v < s.n; v++ {
		s.lower[v], s.upper[v] = 0, 0
	}

	// Phase 2: original objective (artificials cost zero).
	full := make([]float64, s.n)
	copy(full, s.cost)
	st = s.run(full)
	return &Solution{Status: st, X: s.extract(), Obj: s.objective(), Iters: s.iters}
}

// addCol appends a single-entry column and returns its index.
func (s *simplex) addCol(row int, coef, lower, upper, cost float64) int {
	s.cols = append(s.cols, []nz{{int32(row), coef}})
	s.lower = append(s.lower, lower)
	s.upper = append(s.upper, upper)
	s.cost = append(s.cost, cost)
	return len(s.cols) - 1
}

// startValue is the resting value of a nonbasic variable before phase 1.
func (s *simplex) startValue(v int) float64 {
	if math.IsInf(s.lower[v], -1) {
		if math.IsInf(s.upper[v], 1) {
			return 0
		}
		return s.upper[v]
	}
	return s.lower[v]
}

// nonbasicValue is the value of nonbasic variable v under its status.
func (s *simplex) nonbasicValue(v int) float64 {
	if s.status[v] == atUpper {
		return s.upper[v]
	}
	if math.IsInf(s.lower[v], -1) {
		return 0
	}
	return s.lower[v]
}

func identity(m int) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
		out[i][i] = 1
	}
	return out
}

// run performs simplex pivots with the supplied cost vector until optimal,
// unbounded, or out of iterations.
func (s *simplex) run(cost []float64) Status {
	for s.iters < s.opt.MaxIters {
		s.iters++
		if s.sincePiv >= s.opt.RefactorEvery {
			if !s.refactor() {
				return Infeasible // numerically singular basis; treat as failure
			}
		}
		// Simplex multipliers y = c_B B⁻¹.
		if s.yBuf == nil {
			s.yBuf = make([]float64, s.m)
		}
		y := s.yBuf
		for i := range y {
			y[i] = 0
		}
		for i := 0; i < s.m; i++ {
			cb := cost[s.basis[i]]
			if cb == 0 {
				continue
			}
			row := s.binv[i]
			for j := 0; j < s.m; j++ {
				y[j] += cb * row[j]
			}
		}
		entering, dir := s.price(cost, y)
		if entering < 0 {
			return Optimal
		}
		st := s.pivot(entering, dir)
		if st != Optimal {
			return st
		}
	}
	return IterLimit
}

// price selects the entering variable and its direction (+1 moving up from
// lower bound, −1 moving down from upper bound); returns (-1, 0) at
// optimality. Uses Dantzig pricing with a Bland fallback for anti-cycling.
func (s *simplex) price(cost, y []float64) (int, float64) {
	bland := s.blandLeft > 0
	if bland {
		s.blandLeft--
	}
	best, bestScore, bestDir := -1, s.opt.Tol, 0.0
	for v := 0; v < s.n; v++ {
		if s.status[v] == basic || s.lower[v] == s.upper[v] {
			continue
		}
		d := cost[v]
		for _, e := range s.cols[v] {
			d -= y[e.row] * e.val
		}
		var score, dir float64
		if s.status[v] == atLower && d < -s.opt.Tol {
			score, dir = -d, 1
		} else if s.status[v] == atUpper && d > s.opt.Tol {
			score, dir = d, -1
		} else {
			continue
		}
		if bland {
			return v, dir
		}
		if score > bestScore {
			best, bestScore, bestDir = v, score, dir
		}
	}
	return best, bestDir
}

// pivot moves entering variable q in direction dir, performing a bound flip
// or a basis change.
func (s *simplex) pivot(q int, dir float64) Status {
	// w = B⁻¹ a_q.
	if s.wBuf == nil {
		s.wBuf = make([]float64, s.m)
	}
	w := s.wBuf
	for i := range w {
		w[i] = 0
	}
	for _, e := range s.cols[q] {
		v := e.val
		for i := 0; i < s.m; i++ {
			w[i] += s.binv[i][int(e.row)] * v
		}
	}
	// Basic variables change as x_B -= t·dir·w.
	tBest := math.Inf(1)
	leave := -1
	var leaveTo varStatus
	for i := 0; i < s.m; i++ {
		delta := dir * w[i]
		bv := s.basis[i]
		if delta > s.opt.Tol*1e-2 {
			if math.IsInf(s.lower[bv], -1) {
				continue
			}
			t := (s.xB[i] - s.lower[bv]) / delta
			if t < tBest-1e-12 {
				tBest, leave, leaveTo = t, i, atLower
			}
		} else if delta < -s.opt.Tol*1e-2 {
			if math.IsInf(s.upper[bv], 1) {
				continue
			}
			t := (s.upper[bv] - s.xB[i]) / -delta
			if t < tBest-1e-12 {
				tBest, leave, leaveTo = t, i, atUpper
			}
		}
	}
	// The entering variable's own range limits the step too.
	span := s.upper[q] - s.lower[q]
	if span < tBest {
		// Bound flip: no basis change.
		for i := 0; i < s.m; i++ {
			s.xB[i] -= span * dir * w[i]
		}
		if s.status[q] == atLower {
			s.status[q] = atUpper
		} else {
			s.status[q] = atLower
		}
		return Optimal // not terminal; just continue iterating
	}
	if math.IsInf(tBest, 1) {
		return Unbounded
	}
	// Anti-cycling: assignment-structured LPs pivot degenerately all the
	// time, so Bland's (slow) rule only arms after a long run of degenerate
	// pivots — long enough to suggest an actual cycle — and only briefly.
	if tBest < 1e-12 {
		s.degenRun++
		if s.degenRun > 4*s.m {
			s.blandLeft = s.m + 16
			s.degenRun = 0
		}
	} else {
		s.degenRun = 0
	}
	// A numerically tiny pivot element would corrupt the basis inverse;
	// refactorize and let the next iteration re-price instead.
	piv := w[leave]
	if math.Abs(piv) < 1e-11 {
		if !s.refactor() {
			return Infeasible
		}
		return Optimal
	}
	// Apply the step.
	for i := 0; i < s.m; i++ {
		s.xB[i] -= tBest * dir * w[i]
	}
	entVal := s.nonbasicValue(q) + tBest*dir
	lv := s.basis[leave]
	s.status[lv] = leaveTo
	s.basis[leave] = q
	s.status[q] = basic
	s.xB[leave] = entVal
	rowL := s.binv[leave]
	inv := 1 / piv
	for j := 0; j < s.m; j++ {
		rowL[j] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == leave {
			continue
		}
		f := w[i]
		if f == 0 {
			continue
		}
		ri := s.binv[i]
		for j := 0; j < s.m; j++ {
			ri[j] -= f * rowL[j]
		}
	}
	s.sincePiv++
	return Optimal
}

// refactor rebuilds B⁻¹ from scratch (Gauss-Jordan with partial pivoting)
// and recomputes x_B; returns false when the basis is singular.
func (s *simplex) refactor() bool {
	s.sincePiv = 0
	m := s.m
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, 2*m)
		a[i][m+i] = 1
	}
	for pos, v := range s.basis {
		for _, e := range s.cols[v] {
			a[e.row][pos] = e.val
		}
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		piv, pivAbs := -1, 1e-11
		for r := col; r < m; r++ {
			if av := math.Abs(a[r][col]); av > pivAbs {
				piv, pivAbs = r, av
			}
		}
		if piv < 0 {
			return false
		}
		a[col], a[piv] = a[piv], a[col]
		inv := 1 / a[col][col]
		for j := col; j < 2*m; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := col; j < 2*m; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	// B⁻¹ maps: column order of basis positions. a now holds [I | P⁻¹]
	// where P has basis columns in position order; we need row i of B⁻¹ such
	// that x_B[pos] = Σ binvRow(pos)·b. P[r][pos] = B column entry at row r,
	// so P⁻¹ rows are indexed by position.
	for i := 0; i < m; i++ {
		copy(s.binv[i], a[i][m:])
	}
	// Recompute x_B = B⁻¹ (b − N x_N).
	rhs := append([]float64(nil), s.b...)
	for v := 0; v < s.n; v++ {
		if s.status[v] == basic {
			continue
		}
		x := s.nonbasicValue(v)
		if x == 0 {
			continue
		}
		for _, e := range s.cols[v] {
			rhs[e.row] -= e.val * x
		}
	}
	for i := 0; i < m; i++ {
		var sum float64
		row := s.binv[i]
		for j := 0; j < m; j++ {
			sum += row[j] * rhs[j]
		}
		s.xB[i] = sum
	}
	return true
}

// extract returns the structural variable values.
func (s *simplex) extract() []float64 {
	x := make([]float64, s.nStruct)
	for v := 0; v < s.nStruct; v++ {
		if s.status[v] == basic {
			continue
		}
		x[v] = s.nonbasicValue(v)
	}
	for pos, v := range s.basis {
		if v < s.nStruct {
			x[v] = s.xB[pos]
		}
	}
	return x
}

func (s *simplex) objective() float64 {
	var obj float64
	x := s.extract()
	for v := 0; v < s.nStruct; v++ {
		obj += s.cost[v] * x[v]
	}
	return obj
}

// phaseObjective evaluates an arbitrary cost vector at the current point
// over all columns (used for the phase-1 artificial sum).
func (s *simplex) phaseObjective(cost []float64) float64 {
	var obj float64
	for v := 0; v < s.n; v++ {
		if cost[v] == 0 {
			continue
		}
		if s.status[v] == basic {
			continue
		}
		obj += cost[v] * s.nonbasicValue(v)
	}
	for pos, v := range s.basis {
		if cost[v] != 0 {
			obj += cost[v] * s.xB[pos]
		}
	}
	return obj
}
