package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-6

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(b)) }

func TestSimpleMaximization(t *testing.T) {
	// max x+y s.t. x+y<=4, x<=2, y<=3  ==  min -x-y.
	p := NewProblem()
	x := p.AddVar(-1, 0, math.Inf(1))
	y := p.AddVar(-1, 0, math.Inf(1))
	c := p.AddConstraint(LE, 4)
	p.AddTerm(c, x, 1)
	p.AddTerm(c, y, 1)
	c = p.AddConstraint(LE, 2)
	p.AddTerm(c, x, 1)
	c = p.AddConstraint(LE, 3)
	p.AddTerm(c, y, 1)
	sol := p.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Obj, -4) {
		t.Errorf("obj = %f, want -4", sol.Obj)
	}
	if !approx(sol.X[x]+sol.X[y], 4) {
		t.Errorf("x+y = %f", sol.X[x]+sol.X[y])
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+2y s.t. x+y=3, 0<=x<=2 -> x=2, y=1, obj 4.
	p := NewProblem()
	x := p.AddVar(1, 0, 2)
	y := p.AddVar(2, 0, math.Inf(1))
	c := p.AddConstraint(EQ, 3)
	p.AddTerm(c, x, 1)
	p.AddTerm(c, y, 1)
	sol := p.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Obj, 4) || !approx(sol.X[x], 2) || !approx(sol.X[y], 1) {
		t.Errorf("sol = %+v", sol)
	}
}

func TestGEConstraint(t *testing.T) {
	// min x s.t. x >= 2.5.
	p := NewProblem()
	x := p.AddVar(1, 0, math.Inf(1))
	c := p.AddConstraint(GE, 2.5)
	p.AddTerm(c, x, 1)
	sol := p.Solve(Options{})
	if sol.Status != Optimal || !approx(sol.X[x], 2.5) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 0, math.Inf(1))
	c := p.AddConstraint(GE, 2)
	p.AddTerm(c, x, 1)
	c = p.AddConstraint(LE, 1)
	p.AddTerm(c, x, 1)
	if sol := p.Solve(Options{}); sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	// Crossed bounds are infeasible too.
	p = NewProblem()
	p.AddVar(1, 3, 2)
	if sol := p.Solve(Options{}); sol.Status != Infeasible {
		t.Fatalf("crossed bounds: status = %v", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1, 0, math.Inf(1))
	y := p.AddVar(0, 0, 1)
	c := p.AddConstraint(GE, 0) // x - y >= 0: does not bound x above
	p.AddTerm(c, x, 1)
	p.AddTerm(c, y, -1)
	if sol := p.Solve(Options{}); sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNoConstraintsBoundFlip(t *testing.T) {
	// min -x with 0<=x<=5: pure bound flip, no pivots on constraints.
	p := NewProblem()
	x := p.AddVar(-1, 0, 5)
	sol := p.Solve(Options{})
	if sol.Status != Optimal || !approx(sol.X[x], 5) || !approx(sol.Obj, -5) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(5, 1, 1) // fixed at 1
	y := p.AddVar(1, 0, math.Inf(1))
	c := p.AddConstraint(GE, 3)
	p.AddTerm(c, x, 1)
	p.AddTerm(c, y, 1)
	sol := p.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.X[x], 1) || !approx(sol.X[y], 2) || !approx(sol.Obj, 7) {
		t.Errorf("sol = %+v", sol)
	}
}

func TestResolveWithChangedBounds(t *testing.T) {
	// The MILP layer re-solves after collapsing bounds; the Problem must be
	// reusable.
	p := NewProblem()
	x := p.AddVar(-2, 0, 1)
	y := p.AddVar(-1, 0, 1)
	c := p.AddConstraint(LE, 1)
	p.AddTerm(c, x, 1)
	p.AddTerm(c, y, 1)
	sol := p.Solve(Options{})
	if sol.Status != Optimal || !approx(sol.Obj, -2) {
		t.Fatalf("first solve: %+v", sol)
	}
	p.SetBounds(x, 0, 0) // branch x=0
	sol = p.Solve(Options{})
	if sol.Status != Optimal || !approx(sol.Obj, -1) || !approx(sol.X[y], 1) {
		t.Fatalf("second solve: %+v", sol)
	}
	p.SetBounds(x, 1, 1) // branch x=1
	sol = p.Solve(Options{})
	if sol.Status != Optimal || !approx(sol.Obj, -2) || !approx(sol.X[y], 0) {
		t.Fatalf("third solve: %+v", sol)
	}
	if lo, hi := p.Bounds(x); lo != 1 || hi != 1 {
		t.Error("Bounds getter wrong")
	}
}

// assignment LP: min-cost 3x3 assignment must be integral and match brute
// force.
func TestAssignmentLPIntegral(t *testing.T) {
	cost := [3][3]float64{{4, 2, 8}, {4, 3, 7}, {3, 1, 6}}
	p := NewProblem()
	var v [3][3]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v[i][j] = p.AddVar(cost[i][j], 0, 1)
		}
	}
	for i := 0; i < 3; i++ {
		c := p.AddConstraint(EQ, 1)
		for j := 0; j < 3; j++ {
			p.AddTerm(c, v[i][j], 1)
		}
	}
	for j := 0; j < 3; j++ {
		c := p.AddConstraint(EQ, 1)
		for i := 0; i < 3; i++ {
			p.AddTerm(c, v[i][j], 1)
		}
	}
	sol := p.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Brute force.
	best := math.Inf(1)
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, pm := range perms {
		c := cost[0][pm[0]] + cost[1][pm[1]] + cost[2][pm[2]]
		best = math.Min(best, c)
	}
	if !approx(sol.Obj, best) {
		t.Errorf("obj = %f, want %f", sol.Obj, best)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			x := sol.X[v[i][j]]
			if math.Abs(x) > eps && math.Abs(x-1) > eps {
				t.Errorf("x[%d][%d] = %f not integral", i, j, x)
			}
		}
	}
}

func TestTransportation(t *testing.T) {
	// 2 supplies (10, 20), 3 demands (5, 15, 10); known optimum.
	supply := []float64{10, 20}
	demand := []float64{5, 15, 10}
	cost := [2][3]float64{{2, 4, 5}, {3, 1, 7}}
	p := NewProblem()
	var v [2][3]int
	for i := range supply {
		for j := range demand {
			v[i][j] = p.AddVar(cost[i][j], 0, math.Inf(1))
		}
	}
	for i := range supply {
		c := p.AddConstraint(LE, supply[i])
		for j := range demand {
			p.AddTerm(c, v[i][j], 1)
		}
	}
	for j := range demand {
		c := p.AddConstraint(EQ, demand[j])
		for i := range supply {
			p.AddTerm(c, v[i][j], 1)
		}
	}
	sol := p.Solve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Optimal: s1 -> d1 (15@1), s1 -> d0 (5@3), s0 -> d2 (10@5)
	// = 15+15+50 = 80.
	if !approx(sol.Obj, 80) {
		t.Errorf("obj = %f, want 80", sol.Obj)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Multiple redundant constraints at the optimum vertex.
	p := NewProblem()
	x := p.AddVar(-1, 0, math.Inf(1))
	y := p.AddVar(-1, 0, math.Inf(1))
	for i := 0; i < 5; i++ {
		c := p.AddConstraint(LE, 2)
		p.AddTerm(c, x, 1)
		p.AddTerm(c, y, 1)
	}
	c := p.AddConstraint(LE, 1)
	p.AddTerm(c, x, 1)
	sol := p.Solve(Options{})
	if sol.Status != Optimal || !approx(sol.Obj, -2) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Infeasible, Unbounded, IterLimit} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status string")
	}
}

// feasibility checker used by the property test.
func feasible(p *Problem, x []float64, tol float64) bool {
	for v := range p.cost {
		if x[v] < p.lower[v]-tol || x[v] > p.upper[v]+tol {
			return false
		}
	}
	lhs := make([]float64, len(p.rhs))
	for v, col := range p.cols {
		for _, e := range col {
			lhs[e.row] += e.val * x[v]
		}
	}
	for i := range p.rhs {
		switch p.sense[i] {
		case LE:
			if lhs[i] > p.rhs[i]+tol {
				return false
			}
		case GE:
			if lhs[i] < p.rhs[i]-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs[i]-p.rhs[i]) > tol {
				return false
			}
		}
	}
	return true
}

// Property: on random feasible box-constrained problems, the solver returns
// a feasible point whose objective is no worse than a sample of random
// feasible points.
func TestRandomLPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		p := NewProblem()
		for v := 0; v < n; v++ {
			p.AddVar(rng.NormFloat64(), 0, 1+rng.Float64()*4)
		}
		// Constraints built to keep x = lower (0) feasible: a·x <= b, b >= 0.
		for i := 0; i < m; i++ {
			c := p.AddConstraint(LE, rng.Float64()*float64(n))
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.7 {
					p.AddTerm(c, v, rng.Float64()*2-0.5)
				}
			}
		}
		sol := p.Solve(Options{})
		if sol.Status != Optimal {
			return false // x=0 is feasible, boxes bound everything: must be optimal
		}
		if !feasible(p, sol.X, 1e-5) {
			return false
		}
		// Sample random feasible points; none may beat the optimum.
		for trial := 0; trial < 60; trial++ {
			x := make([]float64, n)
			for v := range x {
				x[v] = rng.Float64() * p.upper[v]
			}
			if !feasible(p, x, 0) {
				continue
			}
			var obj float64
			for v := range x {
				obj += p.cost[v] * x[v]
			}
			if obj < sol.Obj-1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAddTermAccumulates(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 0, 10)
	c := p.AddConstraint(GE, 4)
	p.AddTerm(c, x, 1)
	p.AddTerm(c, x, 1) // coefficient becomes 2
	sol := p.Solve(Options{})
	if sol.Status != Optimal || !approx(sol.X[x], 2) {
		t.Fatalf("sol = %+v", sol)
	}
	if p.NumVars() != 1 || p.NumConstraints() != 1 {
		t.Error("counts wrong")
	}
}

func TestIterLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewProblem()
	n := 30
	for v := 0; v < n; v++ {
		p.AddVar(rng.NormFloat64(), 0, 10)
	}
	for i := 0; i < 20; i++ {
		c := p.AddConstraint(LE, 5+rng.Float64()*10)
		for v := 0; v < n; v++ {
			p.AddTerm(c, v, rng.Float64())
		}
	}
	sol := p.Solve(Options{MaxIters: 2})
	if sol.Status != IterLimit && sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
}
