package mth

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitRetriesBackpressureThenSucceeds verifies Submit re-tries 429
// rejections, pacing on the Retry-After hint, and lands once the queue
// opens. An explicit "0" hint must be floored, not busy-looped.
func TestSubmitRetriesBackpressureThenSucceeds(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(JobView{ID: "job-1", State: JobQueued})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	start := time.Now()
	v, err := c.Submit(context.Background(), JobRequest{Testcase: "aes_300"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if v.ID != "job-1" {
		t.Fatalf("ID = %q, want job-1", v.ID)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	// Two sleeps at the 10ms floor; generous upper bound for slow machines.
	if took := time.Since(start); took < 20*time.Millisecond {
		t.Fatalf("retries took %v — the floor on Retry-After: 0 was not applied", took)
	}
}

// TestSubmitGivesUpAfterBudget verifies persistent backpressure surfaces
// as the final APIError rather than retrying forever.
func TestSubmitGivesUpAfterBudget(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
	}))
	defer srv.Close()

	_, err := NewClient(srv.URL).Submit(context.Background(), JobRequest{Testcase: "aes_300"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want final 429 APIError", err)
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want exactly the submit budget (4)", got)
	}
}

// TestSubmitSleepHonorsContext verifies cancellation cuts a Retry-After
// sleep short: a server advertising a long hint cannot pin a canceled
// caller.
func TestSubmitSleepHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := NewClient(srv.URL).Submit(ctx, JobRequest{Testcase: "aes_300"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Submit held for %v after cancellation", took)
	}
}

// TestNonRetryableSubmitFailsFast verifies request defects (400) are never
// retried — only backpressure is.
func TestNonRetryableSubmitFailsFast(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "no testcase"})
	}))
	defer srv.Close()

	_, err := NewClient(srv.URL).Submit(context.Background(), JobRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (400 is not retryable)", got)
	}
}

// TestWaitRidesOutBackpressure verifies a 503 on a status poll is treated
// as "still working", not a terminal failure.
func TestWaitRidesOutBackpressure(t *testing.T) {
	var polls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/jobs/job-1" && polls.Add(1) <= 2:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "briefly overloaded"})
		case r.URL.Path == "/v1/jobs/job-1":
			json.NewEncoder(w).Encode(JobView{ID: "job-1", State: JobDone})
		case r.URL.Path == "/v1/jobs/job-1/result":
			json.NewEncoder(w).Encode(JobResult{ID: "job-1"})
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	res, err := NewClient(srv.URL).Wait(context.Background(), "job-1")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.ID != "job-1" {
		t.Fatalf("result = %+v, want job-1", res)
	}
	if got := polls.Load(); got < 3 {
		t.Fatalf("server saw %d polls, want >= 3 (two 503s then done)", got)
	}
}

// TestParseRetryAfter pins the header grammar the client accepts.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"1", time.Second, true},
		{"0", 0, true},
		{" 2 ", 2 * time.Second, true},
		{"-1", 0, false},
		{"soon", 0, false},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0, false}, // http-date form: unsupported, fall back
	}
	for _, tc := range cases {
		d, ok := parseRetryAfter(tc.in)
		if d != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, d, ok, tc.want, tc.ok)
		}
	}
}
