package mth_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mthplace/internal/errs"
	"mthplace/internal/flow"
	"mthplace/pkg/mth"
)

// TestErrorIdentityAcrossLayers: the three failure-class sentinels are the
// SAME error value at every layer (errs → flow → pkg/mth), and errors.Is
// holds through arbitrary fmt.Errorf wrapping — the contract that lets a
// facade caller dispatch on mth.Err* no matter which internal package
// produced the failure.
func TestErrorIdentityAcrossLayers(t *testing.T) {
	cases := []struct {
		name     string
		internal error // the root sentinel in internal/errs
		flow     error // the flow-layer re-export
		facade   error // the public pkg/mth re-export
	}{
		{"infeasible", errs.ErrInfeasible, flow.ErrInfeasible, mth.ErrInfeasible},
		{"timeout", errs.ErrTimeout, flow.ErrTimeout, mth.ErrTimeout},
		{"canceled", errs.ErrCanceled, flow.ErrCanceled, mth.ErrCanceled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.internal != tc.flow || tc.flow != tc.facade {
				t.Fatalf("sentinels differ across layers: %p / %p / %p",
					tc.internal, tc.flow, tc.facade)
			}
			wrapped := fmt.Errorf("solver: %w", fmt.Errorf("stage 2: %w", tc.internal))
			if !errors.Is(wrapped, tc.facade) {
				t.Errorf("errors.Is fails through wrapping: %v", wrapped)
			}
			if errors.Is(wrapped, pickOther(tc.facade)) {
				t.Errorf("%v matched a different class", wrapped)
			}
		})
	}

	// Constructor helpers keep the class too.
	if err := errs.Infeasible("cluster %d wider than row", 3); !errors.Is(err, mth.ErrInfeasible) {
		t.Errorf("errs.Infeasible lost its class: %v", err)
	}
}

// pickOther returns one of the sentinels that is not err.
func pickOther(err error) error {
	if err == mth.ErrTimeout {
		return mth.ErrCanceled
	}
	return mth.ErrTimeout
}

// realRunner prepares a small runner once for the live-error subtests.
func realRunner(t *testing.T) *mth.Runner {
	t.Helper()
	spec, err := mth.FindSpec("aes_300")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mth.DefaultConfig()
	cfg.Synth.Scale = 0.02
	r, err := mth.NewRunner(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFlowErrorsMatchFacadeSentinels: errors produced by actual flow runs —
// not hand-wrapped ones — match the facade sentinels under errors.Is.
func TestFlowErrorsMatchFacadeSentinels(t *testing.T) {
	r := realRunner(t)

	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := r.Run(ctx, mth.Flow5, false)
		if err == nil {
			t.Fatal("run with canceled context succeeded")
		}
		if !errors.Is(err, mth.ErrCanceled) {
			t.Errorf("err = %v, want errors.Is(_, mth.ErrCanceled)", err)
		}
		if errors.Is(err, mth.ErrTimeout) || errors.Is(err, mth.ErrInfeasible) {
			t.Errorf("err %v matched an unrelated class", err)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		_, err := r.Run(ctx, mth.Flow5, false)
		if err == nil {
			t.Fatal("run with expired deadline succeeded")
		}
		if !errors.Is(err, mth.ErrTimeout) {
			t.Errorf("err = %v, want errors.Is(_, mth.ErrTimeout)", err)
		}
		if errors.Is(err, mth.ErrCanceled) {
			t.Errorf("expired deadline classified as cancel: %v", err)
		}
	})

	t.Run("canceled-new-runner", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		spec, _ := mth.FindSpec("aes_300")
		cfg := mth.DefaultConfig()
		cfg.Synth.Scale = 0.02
		if _, err := mth.Run(ctx, spec, cfg, mth.Flow2, false); !errors.Is(err, mth.ErrCanceled) {
			t.Errorf("one-shot Run: err = %v, want mth.ErrCanceled", err)
		}
	})
}
