package mth

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mthplace/internal/server/scheduler"
)

// JobRequest is the service submit body: a testcase (or inline spec) plus
// per-job flow overrides. Aliased from the scheduler so client and server
// can never drift on the wire shape.
type JobRequest = scheduler.JobRequest

// JobView is the service's wire representation of a job.
type JobView = scheduler.JobView

// JobState is a remote job's lifecycle phase.
type JobState = scheduler.State

// Remote job lifecycle states.
const (
	JobQueued   = scheduler.StateQueued
	JobRunning  = scheduler.StateRunning
	JobDone     = scheduler.StateDone
	JobFailed   = scheduler.StateFailed
	JobCanceled = scheduler.StateCanceled
)

// JobResult is a finished job's payload from GET /v1/jobs/{id}/result.
type JobResult struct {
	// ID is the owning job.
	ID string `json:"id"`
	// Metrics maps the flow number (as a decimal string, matching the wire)
	// to its measurements.
	Metrics map[string]Metrics `json:"metrics"`
	// Placements maps the flow number to the SHA-256 digest of its final
	// placement — the witness that two runs are bit-identical.
	Placements map[string]string `json:"placements"`
	// CacheHit marks a result served from the solve cache.
	CacheHit bool `json:"cache_hit"`
}

// APIError is a non-2xx service response, preserving the status code so
// callers can branch on 429/409/422 without string matching.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the service's Retry-After hint, when the response
	// carried one (429 queue-full and 503 unavailable responses do). Zero
	// means no hint.
	RetryAfter time.Duration
	// hasHint distinguishes an explicit "Retry-After: 0" from no header.
	hasHint bool
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mth: service returned %d: %s", e.Status, e.Message)
}

// Retryable reports whether the error is a back-pressure response (429 or
// 503) that the same request may survive after the Retry-After delay.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// retryDelay is the pause before re-attempting a Retryable response: the
// service's own hint when it sent one (floored so an explicit "0" cannot
// busy-loop), else a conservative default.
func (e *APIError) retryDelay() time.Duration {
	const floor, fallback = 10 * time.Millisecond, 250 * time.Millisecond
	if !e.hasHint {
		return fallback
	}
	if e.RetryAfter < floor {
		return floor
	}
	return e.RetryAfter
}

// parseRetryAfter reads an HTTP Retry-After header in its delta-seconds
// form. ok is false for absent or unparseable values.
func parseRetryAfter(h string) (d time.Duration, ok bool) {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// sleepCtx pauses for d or until ctx is done, whichever first, returning
// ctx's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Client talks to a placement service (cmd/mthserved) over its /v1 API.
// The zero value is not usable; construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
	// cacheControl, when non-empty, is sent as the Cache-Control header on
	// every submit (see the CacheBypass/CacheNoStore/CacheOff options).
	cacheControl string
	// traceparent, when non-empty, is sent as the W3C traceparent header on
	// every submit, so the service's distributed traces continue this
	// client's trace (see WithTraceparent).
	traceparent string
}

// ClientOption customises a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithCacheBypass makes every submission solve fresh while still storing
// the result for later callers (Cache-Control: no-cache).
func WithCacheBypass() ClientOption {
	return func(c *Client) { c.cacheControl = "no-cache" }
}

// WithCacheNoStore lets submissions be served from cache but never adds to
// it (Cache-Control: no-store).
func WithCacheNoStore() ClientOption {
	return func(c *Client) { c.cacheControl = "no-store" }
}

// WithCacheOff disables the solve cache for this client's submissions
// entirely (Cache-Control: no-cache, no-store).
func WithCacheOff() ClientOption {
	return func(c *Client) { c.cacheControl = "no-cache, no-store" }
}

// WithTraceparent stamps every submission with the given W3C traceparent
// header ("00-<trace-id>-<span-id>-01"), making the caller's span the
// parent of each job's distributed trace. The service ignores malformed
// values, so passing through an upstream header verbatim is safe.
func WithTraceparent(tp string) ClientOption {
	return func(c *Client) { c.traceparent = tp }
}

// NewClient builds a client for the service at base (e.g.
// "http://localhost:8080"). A trailing slash is tolerated.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request and decodes the JSON body into out (skipped when
// out is nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf := &bytes.Buffer{}
		if err := json.NewEncoder(buf).Encode(body); err != nil {
			return fmt.Errorf("mth: encoding request: %w", err)
		}
		rd = buf
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("mth: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
		if c.cacheControl != "" {
			req.Header.Set("Cache-Control", c.cacheControl)
		}
		if c.traceparent != "" {
			req.Header.Set("traceparent", c.traceparent)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("mth: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("mth: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(raw))
		}
		apiErr := &APIError{Status: resp.StatusCode, Message: e.Error}
		apiErr.RetryAfter, apiErr.hasHint = parseRetryAfter(resp.Header.Get("Retry-After"))
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("mth: decoding response: %w", err)
	}
	return nil
}

// submitAttempts bounds how many times Submit re-tries a back-pressure
// response before surfacing it.
const submitAttempts = 4

// Submit enqueues one job and returns its accepted view. Queue-full (429)
// and unavailable (503) responses are retried up to three times, honouring
// the service's Retry-After hint; ctx bounds the whole attempt including
// the sleeps between tries.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobView, error) {
	var v JobView
	for attempt := 1; ; attempt++ {
		err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &v)
		var apiErr *APIError
		if err == nil || attempt >= submitAttempts ||
			!errors.As(err, &apiErr) || !apiErr.Retryable() {
			return v, err
		}
		if serr := sleepCtx(ctx, apiErr.retryDelay()); serr != nil {
			return JobView{}, serr
		}
	}
}

// BatchSlot is one element of a batch response: the accepted job's view, or
// the rejection that request earned.
type BatchSlot struct {
	Job    *JobView `json:"job,omitempty"`
	Error  string   `json:"error,omitempty"`
	Status int      `json:"status,omitempty"`
}

// SubmitBatch submits every request in one round trip against POST
// /v1/jobs:batch. Slots pair 1:1 with the requests; a rejected member does
// not sink its siblings (the service answers 207), so callers must check
// each slot. The returned error covers whole-batch failures: transport
// errors, a malformed body, or a batch whose every member was rejected.
func (c *Client) SubmitBatch(ctx context.Context, reqs []JobRequest) ([]BatchSlot, error) {
	var out struct {
		Jobs []BatchSlot `json:"jobs"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/jobs:batch", map[string]any{"jobs": reqs}, &out)
	if err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Status fetches a job's current view.
func (c *Client) Status(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &v)
	return v, err
}

// Result fetches a finished job's metrics. While the job is still running
// the service answers 409, surfaced as *APIError.
func (c *Client) Result(ctx context.Context, id string) (JobResult, error) {
	var r JobResult
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &r)
	return r, err
}

// Trace fetches a job's merged multi-process timeline as Chrome
// trace_event JSON (raw bytes, ready to save and load in chrome://tracing
// or Perfetto). The service answers 404 until the job has recorded at
// least one span, or after the trace was evicted.
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return nil, fmt.Errorf("mth: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("mth: GET trace: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("mth: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(raw))
		}
		return nil, &APIError{Status: resp.StatusCode, Message: e.Error}
	}
	return raw, nil
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, &v)
	return v, err
}

// Wait polls until the job reaches a terminal state and returns its result.
// Cache hits return immediately on the first poll. The poll interval backs
// off from 10ms to 1s; ctx bounds the whole wait. Back-pressure responses
// (429/503) from a poll are treated as "still working": Wait sleeps the
// service's Retry-After hint and polls again rather than aborting.
func (c *Client) Wait(ctx context.Context, id string) (JobResult, error) {
	interval := 10 * time.Millisecond
	for {
		v, err := c.Status(ctx, id)
		if err != nil {
			var apiErr *APIError
			if !errors.As(err, &apiErr) || !apiErr.Retryable() {
				return JobResult{}, err
			}
			if serr := sleepCtx(ctx, apiErr.retryDelay()); serr != nil {
				return JobResult{}, serr
			}
			continue
		}
		if v.State.Terminal() {
			if v.State != JobDone {
				return JobResult{}, fmt.Errorf("mth: job %s finished %s: %s", id, v.State, v.Error)
			}
			return c.Result(ctx, id)
		}
		if err := sleepCtx(ctx, interval); err != nil {
			return JobResult{}, err
		}
		if interval < time.Second {
			interval *= 2
		}
	}
}
