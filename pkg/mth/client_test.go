package mth

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mthplace/internal/server"
)

// newService boots a real placement service (cache on) behind httptest and
// returns a client for it.
func newService(t *testing.T, opts ...ClientOption) *Client {
	t.Helper()
	s, err := server.New(server.Options{Workers: 2, QueueDepth: 8, CacheEntries: 32, DefaultSolver: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		web.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return NewClient(web.URL+"/", opts...) // trailing slash must be tolerated
}

func TestClientSubmitWaitResult(t *testing.T) {
	c := newService(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	v, err := c.Submit(ctx, JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if v.ID == "" || v.State != JobQueued && v.State != JobRunning && v.State != JobDone {
		t.Fatalf("submit view = %+v", v)
	}
	res, err := c.Wait(ctx, v.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.Metrics["5"].HPWL <= 0 {
		t.Errorf("metrics not populated: %+v", res.Metrics)
	}
	if res.Placements["5"] == "" {
		t.Errorf("placement digest missing: %+v", res.Placements)
	}
	if res.CacheHit {
		t.Error("cold solve reported a cache hit")
	}

	// An identical resubmission is served from the cache, bit-identically.
	v2, err := c.Submit(ctx, JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !v2.CacheHit {
		t.Error("resubmission did not hit the cache")
	}
	res2, err := c.Wait(ctx, v2.ID)
	if err != nil {
		t.Fatalf("Wait(hit): %v", err)
	}
	if !res2.CacheHit || res2.Metrics["5"] != res.Metrics["5"] || res2.Placements["5"] != res.Placements["5"] {
		t.Errorf("cached result diverges:\n cold %+v %v\n warm %+v %v",
			res.Metrics["5"], res.Placements["5"], res2.Metrics["5"], res2.Placements["5"])
	}
}

func TestClientBatch(t *testing.T) {
	c := newService(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	slots, err := c.SubmitBatch(ctx, []JobRequest{
		{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}},
		{Testcase: "aes_300", Scale: 0.02, Flows: []int{1}},
	})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if len(slots) != 2 {
		t.Fatalf("batch returned %d slots, want 2", len(slots))
	}
	for i, slot := range slots {
		if slot.Job == nil {
			t.Fatalf("slot %d rejected: %s", i, slot.Error)
		}
		if _, err := c.Wait(ctx, slot.Job.ID); err != nil {
			t.Errorf("slot %d wait: %v", i, err)
		}
	}

	// A uniformly invalid batch is an *APIError carrying the 400.
	if _, err := c.SubmitBatch(ctx, []JobRequest{{Testcase: "nope"}}); err == nil {
		t.Error("invalid batch accepted")
	} else {
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
			t.Errorf("invalid batch error = %v, want APIError 400", err)
		}
	}
}

func TestClientCacheOff(t *testing.T) {
	c := newService(t, WithCacheOff())
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	req := JobRequest{Testcase: "aes_300", Scale: 0.02, Flows: []int{5}}
	v1, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v1.ID); err != nil {
		t.Fatal(err)
	}
	v2, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if v2.CacheHit {
		t.Error("cache-off client was served from cache")
	}
}

func TestClientErrorsAndCancel(t *testing.T) {
	c := newService(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var ae *APIError
	if _, err := c.Status(ctx, "job-999"); !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Errorf("missing job error = %v, want APIError 404", err)
	}
	if _, err := c.Submit(ctx, JobRequest{}); !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Errorf("empty submit error = %v, want APIError 400", err)
	}

	// Park a victim behind blockers occupying both workers, cancel it while
	// queued; Wait reports the canceled terminal state as an error.
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ctx, JobRequest{Testcase: "aes_300", Scale: 0.5, Flows: []int{5}, Cache: "off"}); err != nil {
			t.Fatalf("blocker %d: %v", i, err)
		}
	}
	v, err := c.Submit(ctx, JobRequest{Testcase: "aes_300", Scale: 0.4, Flows: []int{5}, Cache: "off"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if _, err := c.Wait(ctx, v.ID); err == nil {
		t.Error("Wait on canceled job returned success")
	}
}
