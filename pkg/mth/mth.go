// Package mth is the stable public facade of the mixed track-height
// placement engine. It re-exports the spec/config/metrics types and the
// context-aware entry points that external callers (the CLIs, the job
// server, and downstream users) should build against, so the internal
// packages stay free to move.
//
// Typical use:
//
//	spec, _ := mth.FindSpec("ac97_ctrl")
//	cfg := mth.DefaultConfig()
//	cfg.Synth.Scale = 0.1
//	res, err := mth.Run(ctx, spec, cfg, mth.Flow5, false)
//
// or, to run several flows from one prepared testcase:
//
//	r, _ := mth.NewRunner(ctx, spec, cfg)
//	f2, _ := r.Run(ctx, mth.Flow2, false)
//	f5, _ := r.Run(ctx, mth.Flow5, false)
//
// Cancel the context to abort a run: the engine checks it at solver/Lloyd
// iteration and legalization pass boundaries, and the returned error
// matches mth.ErrCanceled (deadline expiry: mth.ErrTimeout) under
// errors.Is. Per-run parallelism is scoped through Config.Jobs (or a
// shared Config.Pool); concurrent runners never interfere.
package mth

import (
	"context"
	"fmt"

	"mthplace/internal/core"
	"mthplace/internal/flow"
	"mthplace/internal/par"
	"mthplace/internal/synth"
)

// Core request/response types, aliased so values flow freely between this
// facade and the internal packages.
type (
	// Spec describes a synthetic testcase (Table II row).
	Spec = synth.Spec
	// Config bundles every stage's options plus the parallelism bound.
	Config = flow.Config
	// ID names one of the placement flows.
	ID = flow.ID
	// Metrics are the per-flow measurements of Tables IV and V.
	Metrics = flow.Metrics
	// Result is a completed flow: the final design and its metrics.
	Result = flow.Result
	// Runner prepares a testcase once and runs any flow from it.
	Runner = flow.Runner
	// Pool is a scoped worker-pool handle (see Config.Pool).
	Pool = par.Pool
	// Representation selects the hot data model (see Config.Rep).
	Representation = flow.Representation
)

// The five flows of Table III, plus the future-work comparators.
const (
	Flow1       = flow.Flow1
	Flow2       = flow.Flow2
	Flow3       = flow.Flow3
	Flow4       = flow.Flow4
	Flow5       = flow.Flow5
	FlowFinFlex = flow.FlowFinFlex
	FlowRegion  = flow.FlowRegion
)

// Data representations for Config.Rep: the pointer-per-object netlist
// (default) or the flat structure-of-arrays model. Results are identical;
// RepSoA trades conversion passes for memory locality at scale.
const (
	RepAoS = flow.RepAoS
	RepSoA = flow.RepSoA
)

// Typed failure classes for errors.Is — see flow's docs for semantics.
var (
	ErrInfeasible = flow.ErrInfeasible
	ErrTimeout    = flow.ErrTimeout
	ErrCanceled   = flow.ErrCanceled
	// ErrTransient marks failures expected to clear on retry (injected
	// faults, briefly unavailable resources).
	ErrTransient = flow.ErrTransient
	// ErrPanic marks a panic caught at the flow boundary and converted to
	// an error; it is a bug report, never a retry candidate.
	ErrPanic = flow.ErrPanic
	// ErrUnavailable marks a backend (remote worker, open circuit) that
	// could not take the work at all; the service answers 503 + Retry-After
	// for this class and the client's Submit/Wait honour it.
	ErrUnavailable = flow.ErrUnavailable
)

// Degradation policies for Config.Core.Solve.Degrade: the default anytime
// policy walks the ladder (ILP optimum → anytime incumbent → greedy) when
// budgets run out, honestly labelling the result in Metrics; the strict
// policy fails fast instead, for callers that must have the proven optimum.
const (
	DegradeAnytime = core.DegradeAnytime
	DegradeStrict  = core.DegradeStrict
)

// Solve-ladder rung names as they appear in Metrics.SolveRung.
const (
	RungILP     = core.RungILP
	RungAnytime = core.RungAnytime
	RungGreedy  = core.RungGreedy
)

// Solver backends for Config.Core.Solve.Backend: the generic MILP branch
// and bound (the default), the structure-aware Lagrangian solver, or the
// greedy heuristic alone. Both exact backends return objective-equal
// results at proven optimality; rap is the faster one on large instances.
const (
	BackendMILP   = core.BackendMILP
	BackendRAP    = core.BackendRAP
	BackendGreedy = core.BackendGreedy
)

// ValidBackend reports whether name is a usable Config.Core.Solve.Backend
// value ("" selects the default MILP backend). CLIs and the job server
// validate requests with it before starting work.
func ValidBackend(name string) error {
	switch name {
	case "", BackendMILP, BackendRAP, BackendGreedy:
		return nil
	}
	return fmt.Errorf("mth: unknown solver backend %q (want %s, %s or %s)",
		name, BackendMILP, BackendRAP, BackendGreedy)
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config { return flow.DefaultConfig() }

// TableII returns the paper's full testcase suite.
func TableII() []Spec { return synth.TableII() }

// FindSpec returns the Table II spec with the given name.
func FindSpec(name string) (Spec, error) {
	for _, s := range synth.TableII() {
		if s.Name() == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("mth: unknown testcase %q", name)
}

// NewPool builds a worker pool bounded to n jobs (n <= 0: the process
// default), for sharing one parallelism budget across several configs.
func NewPool(n int) *Pool { return par.NewPool(n) }

// NewRunner generates the testcase and the shared unconstrained initial
// placement that every flow starts from.
func NewRunner(ctx context.Context, spec Spec, cfg Config) (*Runner, error) {
	return flow.NewRunner(ctx, spec, cfg)
}

// Run is the one-shot entry point: prepare the testcase and run one flow.
// withRoute additionally routes the result and fills the post-route
// metrics.
func Run(ctx context.Context, spec Spec, cfg Config, id ID, withRoute bool) (*Result, error) {
	r, err := flow.NewRunner(ctx, spec, cfg)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx, id, withRoute)
}
