package mth_test

import (
	"context"
	"errors"
	"testing"

	"mthplace/pkg/mth"
)

// TestFacadeSmoke drives the public API the way an external consumer
// would: find a Table II spec, shrink it, run the paper's final flow.
func TestFacadeSmoke(t *testing.T) {
	spec, err := mth.FindSpec("aes_300")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mth.DefaultConfig()
	cfg.Synth.Scale = 0.02
	res, err := mth.Run(context.Background(), spec, cfg, mth.Flow5, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Flow != mth.Flow5 {
		t.Errorf("flow tag %v, want %v", res.Metrics.Flow, mth.Flow5)
	}
	if res.Metrics.HPWL <= 0 {
		t.Errorf("HPWL = %d, want > 0", res.Metrics.HPWL)
	}
}

// TestFacadeErrors: the re-exported sentinels classify failures from the
// internal layers.
func TestFacadeErrors(t *testing.T) {
	if _, err := mth.FindSpec("not_a_testcase"); err == nil {
		t.Error("FindSpec accepted an unknown name")
	}
	spec, err := mth.FindSpec("aes_300")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mth.DefaultConfig()
	cfg.Synth.Scale = 0.02
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mth.Run(ctx, spec, cfg, mth.Flow5, false); !errors.Is(err, mth.ErrCanceled) {
		t.Errorf("pre-canceled run: err = %v, want ErrCanceled", err)
	}
}

// TestFacadeScopedPools: the exported pool constructor composes with the
// config, mirroring how the job server budgets parallelism.
func TestFacadeScopedPools(t *testing.T) {
	spec, err := mth.FindSpec("aes_300")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mth.DefaultConfig()
	cfg.Synth.Scale = 0.02
	cfg.Pool = mth.NewPool(2)
	r, err := mth.NewRunner(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pool() != cfg.Pool {
		t.Error("runner did not adopt the explicit pool")
	}
	if _, err := r.Run(context.Background(), mth.Flow2, false); err != nil {
		t.Fatal(err)
	}
}
