// Parallel-layer benchmarks: each Benchmark*Parallel variant runs the same
// workload as its serial counterpart with the worker pool opened up to 8
// extras (results are bit-identical either way; see DESIGN.md §7). On a
// single-core host the parallel variants measure the pool's scheduling
// overhead rather than a speedup — cmd/benchpar records both numbers plus
// the host core count in BENCH_parallel.json.
package mthplace_test

import (
	"context"
	"testing"

	"mthplace/internal/cluster"
	"mthplace/internal/core"
	"mthplace/internal/exp"
	"mthplace/internal/flow"
	"mthplace/internal/par"
	"mthplace/internal/synth"
)

// benchJobs is the worker bound used by the *Parallel variants.
const benchJobs = 8

// benchCtx carries a scoped pool bounded to jobs workers; nothing global
// changes, matching how the flow API now threads parallelism.
func benchCtx(jobs int) context.Context {
	return par.WithPool(context.Background(), par.NewPool(jobs))
}

// benchModelInputs builds the clustered RAP inputs once for the BuildModel
// benchmarks.
func benchModelInputs(b *testing.B) *benchModelEnv {
	b.Helper()
	run := benchRunner(b, "des3_210")
	d := run.Base.Clone()
	cl, err := core.BuildClusters(context.Background(), d, 0.2, 30)
	if err != nil {
		b.Fatal(err)
	}
	return &benchModelEnv{run: run, cl: cl}
}

type benchModelEnv struct {
	run *flow.Runner
	cl  *core.Clusters
}

func benchBuildModel(b *testing.B, jobs int) {
	env := benchModelInputs(b)
	ctx := benchCtx(jobs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildModel(ctx, env.run.Base, env.run.Grid, env.cl, env.run.NminR, core.DefaultCostParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildModelSerial measures the RAP cost-matrix build (Eq. 3-5
// inputs) with the pool pinned to one worker.
func BenchmarkBuildModelSerial(b *testing.B) { benchBuildModel(b, 1) }

// BenchmarkBuildModelParallel measures the same build with up to benchJobs
// workers splitting the per-cluster outer loop.
func BenchmarkBuildModelParallel(b *testing.B) { benchBuildModel(b, benchJobs) }

func benchKMeans(b *testing.B, jobs int) {
	pts := make([]cluster.Point2, 2000)
	for i := range pts {
		pts[i] = cluster.Point2{X: float64(i*131%9973) / 9973, Y: float64(i*197%9967) / 9967}
	}
	ctx := benchCtx(jobs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.KMeans2D(ctx, pts, 400, 30)
	}
}

// BenchmarkKMeans2DSerial pins the Lloyd assignment pass to one worker.
func BenchmarkKMeans2DSerial(b *testing.B) { benchKMeans(b, 1) }

// BenchmarkKMeans2DParallel chunks the assignment pass across the pool; the
// per-chunk partial sums merge in chunk order, so centroids are bit-identical
// to the serial run.
func BenchmarkKMeans2DParallel(b *testing.B) { benchKMeans(b, benchJobs) }

func benchTable4(b *testing.B, jobs int) {
	var specs []synth.Spec
	for _, s := range synth.TableII() {
		if s.Name() == "aes_360" || s.Name() == "fpu_4500" {
			specs = append(specs, s)
		}
	}
	cfg := exp.Config{Scale: 0.015, Specs: specs}
	cfg.Flow = flow.DefaultConfig()
	cfg.Flow.Jobs = jobs
	cfg.Flow.Placer.OuterIters = 4
	cfg.Flow.Placer.SolveSweeps = 6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table4(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4MatrixSerial runs the Table IV experiment matrix with one
// worker per layer.
func BenchmarkTable4MatrixSerial(b *testing.B) { benchTable4(b, 1) }

// BenchmarkTable4MatrixParallel runs the testcases of the Table IV matrix
// concurrently with the ordered-results collector.
func BenchmarkTable4MatrixParallel(b *testing.B) { benchTable4(b, benchJobs) }
