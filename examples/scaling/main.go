// Scaling reproduces Fig. 5 in miniature: the ILP runtime of the proposed
// row assignment plotted against the number of minority instances, with the
// least-squares fit showing the (near-linear) scaling the paper reports.
//
//	go run ./examples/scaling
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"mthplace/internal/exp"
	"mthplace/internal/synth"
)

func main() {
	// A spread of testcase sizes; the experiments CLI runs all 26.
	names := map[string]bool{
		"aes_400": true, "aes_300": true, "fpu_4500": true,
		"des3_290": true, "des3_210": true, "jpeg_350": true,
	}
	var specs []synth.Spec
	for _, s := range synth.TableII() {
		if names[s.Name()] {
			specs = append(specs, s)
		}
	}

	res, err := exp.Fig5(context.Background(), exp.Config{Scale: 0.05, Specs: specs})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ILP runtime vs number of minority instances (Flow 5):")
	maxT := 0.0
	for _, p := range res.Points {
		if p.ILPSeconds > maxT {
			maxT = p.ILPSeconds
		}
	}
	for _, p := range res.Points {
		bar := int(40 * p.ILPSeconds / maxT)
		fmt.Printf("  %-10s %5d minority  %7.3fs  %s\n",
			p.Name, p.NumMinority, p.ILPSeconds, strings.Repeat("#", bar))
	}
	fmt.Printf("\nleast-squares fit: t = %.3g·n %+.3g  (correlation r = %.3f)\n",
		res.Slope, res.Intercept, res.R)
}
