// Quickstart: run the paper's final flow (Flow 5 — ILP row assignment +
// fence-aware legalization) on one small testcase and print every metric
// the paper reports.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mthplace/internal/tech"
	"mthplace/pkg/mth"
)

func main() {
	// Cancel this context (or give it a deadline) to abort the run early.
	ctx := context.Background()

	// Pick a Table II testcase. Scale 0.05 keeps the quickstart fast; set
	// Scale to 1.0 for the paper-size design.
	spec := mth.TableII()[3] // aes_360
	cfg := mth.DefaultConfig()
	cfg.Synth.Scale = 0.05

	// The Runner prepares the shared starting point: synthetic netlist,
	// mLEF transform, unconstrained global placement, and Flow (2)'s
	// minority row budget N_minR.
	runner, err := mth.NewRunner(ctx, spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("testcase %s: %d cells (%.1f%% are 7.5T), %d nets, %d row pairs, N_minR=%d\n",
		spec.Name(), len(runner.Base.Insts), 100*runner.Base.MinorityFraction(),
		len(runner.Base.Nets), runner.Grid.N, runner.NminR)

	// Run the proposed flow end-to-end, including routing and signoff.
	res, err := runner.Run(ctx, mth.Flow5, true)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics

	fmt.Println("\nFlow (5) — proposed ILP row assignment + fence-aware legalization:")
	fmt.Printf("  clusters for the ILP:  %d (ILP variables: %d)\n", m.NumClusters, m.ILPVars)
	fmt.Printf("  row assignment time:   %v\n", m.RAPTime)
	fmt.Printf("  legalization time:     %v\n", m.LegalTime)
	fmt.Printf("  displacement:          %d DBU\n", m.Displacement)
	fmt.Printf("  post-placement HPWL:   %d DBU\n", m.HPWL)
	fmt.Printf("  routed wirelength:     %d DBU\n", m.RoutedWL)
	fmt.Printf("  total power:           %.3f mW\n", m.PowerMW)
	fmt.Printf("  WNS / TNS:             %.3f / %.3f ns\n", m.WNSps/1000, m.TNSps/1000)

	// Show the mixed track-height row structure the RAP produced.
	tall := len(res.Stack.PairsOf(tech.Tall7p5T))
	fmt.Printf("\nrow structure: %d pairs total, %d are 7.5T islands\n", res.Stack.NumPairs(), tall)
}
