// Fiveflows compares all five Table III placement flows on one testcase —
// a miniature of the paper's Tables IV and V. Flows (2)/(3) use the prior
// work's k-means row assignment; (4)/(5) use the proposed ILP; (3)/(5) use
// the proposed fence-aware legalization.
//
//	go run ./examples/fiveflows
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mthplace/internal/flow"
	"mthplace/internal/metrics"
	"mthplace/pkg/mth"
)

func main() {
	ctx := context.Background()
	spec := mth.TableII()[16] // des3_220
	cfg := mth.DefaultConfig()
	cfg.Synth.Scale = 0.05

	runner, err := mth.NewRunner(ctx, spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("testcase %s at scale %.2f: %d cells, %.1f%% 7.5T, N_minR=%d\n\n",
		spec.Name(), cfg.Synth.Scale, len(runner.Base.Insts),
		100*runner.Base.MinorityFraction(), runner.NminR)

	results, err := runner.RunAll(ctx, true)
	if err != nil {
		log.Fatal(err)
	}

	t := &metrics.Table{
		Title: "five flows on " + spec.Name() +
			" (Flow 1 = unconstrained mLEF reference)",
		Headers: []string{"flow", "row assignment", "legalization",
			"disp", "HPWL", "routedWL", "power(mW)", "WNS(ns)", "TNS(ns)", "time"},
	}
	assign := map[flow.ID]string{
		flow.Flow1: "none", flow.Flow2: "[10] k-means", flow.Flow3: "[10] k-means",
		flow.Flow4: "ours (ILP)", flow.Flow5: "ours (ILP)",
	}
	legal := map[flow.ID]string{
		flow.Flow1: "none", flow.Flow2: "[10] Abacus", flow.Flow3: "ours (fence)",
		flow.Flow4: "[10] Abacus", flow.Flow5: "ours (fence)",
	}
	for _, id := range []flow.ID{flow.Flow1, flow.Flow2, flow.Flow3, flow.Flow4, flow.Flow5} {
		m := results[id].Metrics
		t.Add(fmt.Sprint(int(id)), assign[id], legal[id],
			fmt.Sprint(m.Displacement), fmt.Sprint(m.HPWL), fmt.Sprint(m.RoutedWL),
			metrics.F(m.PowerMW, 2), metrics.F(m.WNSps/1000, 3), metrics.F(m.TNSps/1000, 1),
			m.TotalTime.Truncate(1e6).String())
	}
	t.Render(os.Stdout)

	f2, f5 := results[flow.Flow2].Metrics, results[flow.Flow5].Metrics
	fmt.Printf("\nFlow (5) vs Flow (2): HPWL %+0.1f%%, routed WL %+0.1f%%, power %+0.1f%%\n",
		pct(f5.HPWL, f2.HPWL), pct(f5.RoutedWL, f2.RoutedWL),
		100*(f5.PowerMW/f2.PowerMW-1))
}

func pct(a, b int64) float64 { return 100 * (float64(a)/float64(b) - 1) }
