// Paramsweep reproduces Fig. 4 in miniature: it sweeps the clustering
// resolution s and the cost weight α on a couple of testcases and prints
// the normalised displacement / HPWL / ILP-runtime curves from which the
// paper picks s = 0.2 and α = 0.75.
//
//	go run ./examples/paramsweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mthplace/internal/exp"
	"mthplace/internal/synth"
)

func main() {
	// Two testcases keep the example quick; the experiments CLI sweeps the
	// paper's full 14-testcase set.
	var specs []synth.Spec
	for _, s := range synth.TableII() {
		if s.Name() == "aes_360" || s.Name() == "jpeg_400" {
			specs = append(specs, s)
		}
	}
	cfg := exp.Config{Scale: 0.04, Specs: specs}
	ctx := context.Background()

	fmt.Println("sweeping clustering resolution s (Fig. 4a)...")
	sweepS, err := exp.Fig4a(ctx, cfg, []float64{0.1, 0.2, 0.5, 1.0})
	if err != nil {
		log.Fatal(err)
	}
	sweepS.Table().Render(os.Stdout)
	fmt.Printf("chosen s = %.2f\n\n", sweepS.Best)

	fmt.Println("sweeping cost weight alpha (Fig. 4b)...")
	sweepA, err := exp.Fig4b(ctx, cfg, []float64{0, 0.25, 0.5, 0.75, 1.0})
	if err != nil {
		log.Fatal(err)
	}
	sweepA.Table().Render(os.Stdout)
	fmt.Printf("chosen alpha = %.2f\n", sweepA.Best)
}
