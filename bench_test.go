// Package mthplace's root benchmark suite regenerates, at reduced design
// scale, the workload behind every table and figure of the paper (see
// DESIGN.md §4 for the experiment index). Absolute runtimes differ from the
// paper's Innovus/CPLEX testbed; the benchmarks exercise the identical code
// paths the experiments CLI uses at full size:
//
//	BenchmarkTable2TestcaseGeneration  — Table II workload generator
//	BenchmarkTable4PostPlacementFlows  — Table IV (five flows, post-place)
//	BenchmarkTable5PostRouteFlows      — Table V (route + STA + power)
//	BenchmarkFig4aSweepS               — Fig. 4(a) clustering sweep
//	BenchmarkFig4bSweepAlpha           — Fig. 4(b) alpha sweep
//	BenchmarkFig5ILPRuntimeScaling     — Fig. 5 ILP scaling point
//	BenchmarkAblationClustering        — §IV-B.4 clustered vs unclustered ILP
//
// plus per-substrate microbenchmarks of the placer, legalizer, router, STA
// and the LP/MILP engines.
package mthplace_test

import (
	"context"
	"testing"

	"mthplace/internal/celllib"
	"mthplace/internal/cluster"
	"mthplace/internal/core"
	"mthplace/internal/flow"
	"mthplace/internal/geom"
	"mthplace/internal/legalize"
	"mthplace/internal/lp"
	"mthplace/internal/placer"
	"mthplace/internal/power"
	"mthplace/internal/route"
	"mthplace/internal/rowgrid"
	"mthplace/internal/sta"
	"mthplace/internal/synth"
	"mthplace/internal/tech"
)

const benchScale = 0.02

func benchSpec(name string) synth.Spec {
	for _, s := range synth.TableII() {
		if s.Name() == name {
			return s
		}
	}
	panic("unknown spec " + name)
}

func benchRunner(b *testing.B, name string) *flow.Runner {
	b.Helper()
	cfg := flow.DefaultConfig()
	cfg.Synth.Scale = benchScale
	cfg.Placer.OuterIters = 6
	cfg.Placer.SolveSweeps = 10
	r, err := flow.NewRunner(context.Background(), benchSpec(name), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable2TestcaseGeneration measures the synthetic netlist
// generator behind Table II.
func BenchmarkTable2TestcaseGeneration(b *testing.B) {
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = benchScale
	spec := benchSpec("des3_210")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(tc, lib, spec, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4PostPlacementFlows runs all five Table III flows
// post-placement (the Table IV workload).
func BenchmarkTable4PostPlacementFlows(b *testing.B) {
	r := benchRunner(b, "aes_360")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunAll(context.Background(), false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5PostRouteFlows runs the four routed flows of Table V.
func BenchmarkTable5PostRouteFlows(b *testing.B) {
	r := benchRunner(b, "aes_360")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range []flow.ID{flow.Flow1, flow.Flow2, flow.Flow4, flow.Flow5} {
			if _, err := r.Run(context.Background(), id, true); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4aSweepS sweeps the clustering resolution through the Flow 4
// pipeline (the Fig. 4(a) workload).
func BenchmarkFig4aSweepS(b *testing.B) {
	r := benchRunner(b, "aes_360")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range []float64{0.1, 0.2, 0.5} {
			r.Cfg.Core.S = s
			if _, err := r.Run(context.Background(), flow.Flow4, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4bSweepAlpha sweeps the cost weight α (the Fig. 4(b)
// workload).
func BenchmarkFig4bSweepAlpha(b *testing.B) {
	r := benchRunner(b, "aes_360")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range []float64{0, 0.5, 1.0} {
			r.Cfg.Core.Cost.Alpha = a
			if _, err := r.Run(context.Background(), flow.Flow4, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5ILPRuntimeScaling measures one ILP row-assignment solve (one
// point of Fig. 5).
func BenchmarkFig5ILPRuntimeScaling(b *testing.B) {
	r := benchRunner(b, "des3_210")
	d := r.Base.Clone()
	cl, err := core.BuildClusters(context.Background(), d, 0.2, 30)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.BuildModel(context.Background(), d, r.Grid, cl, r.NminR, core.DefaultCostParams())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions().Solve
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveILP(context.Background(), m, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClustering compares the unclustered (s=1) and clustered
// (s=0.2) ILP solves (§IV-B.4).
func BenchmarkAblationClustering(b *testing.B) {
	r := benchRunner(b, "aes_300")
	for _, s := range []float64{1.0, 0.2} {
		b.Run(map[float64]string{1.0: "unclustered", 0.2: "s=0.2"}[s], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Cfg.Core.S = s
				if _, err := r.Run(context.Background(), flow.Flow4, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate microbenchmarks ---

func BenchmarkGlobalPlacer(b *testing.B) {
	tc := tech.Default()
	lib := celllib.New(tc)
	opt := synth.DefaultOptions()
	opt.Scale = benchScale
	d, err := synth.Generate(tc, lib, benchSpec("jpeg_300"), opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placer.Global(d, placer.Options{OuterIters: 8, SolveSweeps: 12})
	}
}

func BenchmarkAbacusLegalization(b *testing.B) {
	r := benchRunner(b, "jpeg_300")
	base := r.Base
	g := r.Grid
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		if err := legalize.Uniform(d, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlobalRouter(b *testing.B) {
	r := benchRunner(b, "aes_360")
	res, err := r.Run(context.Background(), flow.Flow5, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Route(res.Design, route.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTA(b *testing.B) {
	r := benchRunner(b, "aes_360")
	res, err := r.Run(context.Background(), flow.Flow5, false)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := route.Route(res.Design, route.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Analyze(res.Design, sta.Options{NetLength: rt.NetLength}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerAnalysis(b *testing.B) {
	r := benchRunner(b, "aes_360")
	res, err := r.Run(context.Background(), flow.Flow5, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := power.Analyze(res.Design, power.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans2D(b *testing.B) {
	pts := make([]cluster.Point2, 2000)
	for i := range pts {
		pts[i] = cluster.Point2{X: float64(i*131%9973) / 9973, Y: float64(i*197%9967) / 9967}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.KMeans2D(context.Background(), pts, 400, 30)
	}
}

func BenchmarkLPSolve(b *testing.B) {
	// A 60-cluster × 12-row assignment LP with capacities and cardinality.
	build := func() *lp.Problem {
		p := lp.NewProblem()
		const nC, nR = 60, 12
		x := make([][]int, nC)
		for c := 0; c < nC; c++ {
			x[c] = make([]int, nR)
			for r := 0; r < nR; r++ {
				x[c][r] = p.AddVar(float64((c*7+r*13)%101), 0, 1)
			}
		}
		y := make([]int, nR)
		for r := 0; r < nR; r++ {
			y[r] = p.AddVar(0, 0, 1)
		}
		for c := 0; c < nC; c++ {
			row := p.AddConstraint(lp.EQ, 1)
			for r := 0; r < nR; r++ {
				p.AddTerm(row, x[c][r], 1)
			}
		}
		for r := 0; r < nR; r++ {
			row := p.AddConstraint(lp.LE, 0)
			for c := 0; c < nC; c++ {
				p.AddTerm(row, x[c][r], 10)
			}
			p.AddTerm(row, y[r], -120)
		}
		card := p.AddConstraint(lp.EQ, 6)
		for r := 0; r < nR; r++ {
			p.AddTerm(card, y[r], 1)
		}
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := p.Solve(lp.Options{})
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkMixedStackRestack(b *testing.B) {
	tc := tech.Default()
	die := rowgridDie(tc, 200)
	hs := make([]tech.TrackHeight, 200)
	for i := 0; i < 40; i++ {
		hs[i*5] = tech.Tall7p5T
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rowgrid.Stack(die, hs, tc); err != nil {
			b.Fatal(err)
		}
	}
}

func rowgridDie(tc *tech.Tech, pairs int) geom.Rect {
	h := int64(pairs)*tc.PairHeight(tech.Short6T) + 40*(tc.PairHeight(tech.Tall7p5T)-tc.PairHeight(tech.Short6T))
	return geom.NewRect(0, 0, 100000, h)
}
